#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "core/input_view.hpp"
#include "core/matex_solver.hpp"
#include "la/error.hpp"
#include "solver/dc.hpp"
#include "solver/fixed_step.hpp"
#include "solver/observer.hpp"
#include "test_util.hpp"

namespace matex::core {
namespace {

using circuit::MnaSystem;
using circuit::Netlist;
using circuit::PulseSpec;
using circuit::Waveform;
using krylov::KrylovKind;
using solver::StateRecorder;
using solver::uniform_grid;

PulseSpec bump(double delay, double rise, double width, double fall,
               double v2, double period = 0.0) {
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = v2;
  s.delay = delay;
  s.rise = rise;
  s.width = width;
  s.fall = fall;
  s.period = period;
  return s;
}

/// Supply-driven RC chain with one pulsed load: every node has a cap, so
/// even MEXP (standard basis, factorizes C) can run without regularization.
struct ChainFixture {
  Netlist netlist;
  std::unique_ptr<MnaSystem> mna;

  ChainFixture() {
    netlist.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
    const char* nodes[] = {"p", "n1", "n2", "n3", "n4"};
    for (int i = 0; i < 4; ++i) {
      netlist.add_resistor(matex::testing::numbered("R", i), nodes[i],
                           nodes[i + 1], 0.5);
      netlist.add_capacitor(matex::testing::numbered("C", i), nodes[i + 1],
                            "0", 0.4);
    }
    netlist.add_current_source("I1", "n4", "0",
                               Waveform::pulse(bump(0.5, 0.1, 0.4, 0.1,
                                                    0.3)));
    mna = std::make_unique<MnaSystem>(netlist);
  }
};

StateRecorder tr_reference(const MnaSystem& mna, std::span<const double> x0,
                           double t_end, double h = 1e-4) {
  solver::FixedStepOptions opt;
  opt.t_end = t_end;
  opt.h = h;
  StateRecorder rec;
  run_fixed_step(mna, x0, solver::StepMethod::kTrapezoidal, opt,
                 rec.observer());
  return rec;
}

struct KindCase {
  KrylovKind kind;
  double gamma;
};

class MatexKindTest : public ::testing::TestWithParam<KindCase> {};

TEST_P(MatexKindTest, MatchesFineTrReferenceOnPulse) {
  const auto [kind, gamma] = GetParam();
  ChainFixture f;
  const auto dc = solver::dc_operating_point(*f.mna);
  const auto ref = tr_reference(*f.mna, dc.x, 2.0);

  MatexOptions opt;
  opt.kind = kind;
  opt.gamma = gamma;
  opt.tolerance = 1e-9;
  opt.max_dim = 40;
  MatexCircuitSolver solver(*f.mna, opt, dc.g_factors);
  const FullInput input(*f.mna);
  const auto grid = uniform_grid(0.0, 2.0, 0.05);
  StateRecorder rec;
  const auto stats =
      solver.run(dc.x, 0.0, 2.0, input, grid, rec.observer());

  ASSERT_EQ(rec.sample_count(), grid.size());
  for (std::size_t i = 0; i < rec.sample_count(); ++i) {
    const std::size_t ref_idx =
        static_cast<std::size_t>(std::llround(rec.times()[i] / 1e-4));
    for (std::size_t j = 0; j < rec.state(i).size(); ++j)
      EXPECT_NEAR(rec.state(i)[j], ref.state(ref_idx)[j], 5e-6)
          << kind_name(kind) << " t=" << rec.times()[i] << " node " << j;
  }
  // Krylov subspaces are generated only at the pulse's transition spots
  // (4 of them) plus possibly the initial segment; far fewer than the 41
  // evaluation points.
  EXPECT_LE(stats.krylov_subspaces, 6);
  EXPECT_GE(stats.steps, 40);
}

TEST_P(MatexKindTest, ExactForRampInput) {
  // R = C = 1, current ramp I(t) = t: v(t) = t - 1 + e^{-t} exactly.
  // MATEX's Eq. (5) is exact for PWL inputs, so the only error is the
  // Krylov tolerance.
  const auto [kind, gamma] = GetParam();
  Netlist n;
  n.add_resistor("R1", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  n.add_current_source("I1", "0", "b",
                       Waveform::pwl({0.0, 10.0}, {0.0, 10.0}));
  const MnaSystem mna(n);
  MatexOptions opt;
  opt.kind = kind;
  opt.gamma = gamma;
  opt.tolerance = 1e-11;
  opt.max_dim = 30;
  MatexCircuitSolver solver(mna, opt);
  const FullInput input(mna);
  const std::vector<double> x0{0.0};
  const auto grid = uniform_grid(0.0, 5.0, 0.5);
  StateRecorder rec;
  const auto stats = solver.run(x0, 0.0, 5.0, input, grid, rec.observer());
  for (std::size_t i = 0; i < rec.sample_count(); ++i) {
    const double t = rec.times()[i];
    EXPECT_NEAR(rec.state(i)[0], t - 1.0 + std::exp(-t), 1e-8) << "t=" << t;
  }
  // One PWL segment covers the whole run: a single subspace suffices.
  EXPECT_EQ(stats.krylov_subspaces, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MatexKindTest,
    ::testing::Values(KindCase{KrylovKind::kStandard, 0.0},
                      KindCase{KrylovKind::kInverted, 0.0},
                      KindCase{KrylovKind::kRational, 0.1}));

TEST(MatexSolver, RlcSeriesUnderdampedMatchesAnalytic) {
  // Series RLC with R = L = C = 1 driven by a near-step (1 ms ramp; the
  // zero state is consistent because u(0) = 0):
  //   v_C'' + v_C' + v_C = u,  poles -1/2 +- i*sqrt(3)/2 (underdamped).
  Netlist n;
  n.add_voltage_source("V1", "in", "0",
                       Waveform::pwl({0.0, 1e-3}, {0.0, 1.0}));
  n.add_resistor("R1", "in", "a", 1.0);
  n.add_inductor("L1", "a", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  const MnaSystem mna(n);
  ASSERT_EQ(mna.branch_unknowns(), 2);  // inductor + V-source branch

  MatexOptions opt;
  opt.kind = KrylovKind::kRational;
  opt.gamma = 0.5;
  opt.tolerance = 1e-11;
  opt.max_dim = 20;
  MatexCircuitSolver solver(mna, opt);
  const FullInput input(mna);
  const std::vector<double> x0(static_cast<std::size_t>(mna.dimension()),
                               0.0);
  const auto grid = uniform_grid(0.0, 8.0, 0.5);
  StateRecorder rec;
  solver.run(x0, 0.0, 8.0, input, grid, rec.observer());

  const double wd = std::sqrt(3.0) / 2.0;
  const auto vb_idx =
      static_cast<std::size_t>(mna.unknown_index(n.find_node("b")));
  for (std::size_t i = 0; i < rec.sample_count(); ++i) {
    const double t = rec.times()[i];
    const double vc =
        1.0 - std::exp(-t / 2.0) *
                  (std::cos(wd * t) + std::sin(wd * t) / (2.0 * wd));
    // Budget: the 1 ms input ramp shifts the ideal step response by
    // O(1e-3); the Krylov error itself is far below that.
    EXPECT_NEAR(rec.state(i)[vb_idx], vc, 2e-3) << "t=" << t;
  }
}

TEST(MatexSolver, LinearizedSinDriveMatchesTrReference) {
  // A SIN load linearized to PWL runs through the exponential integrator;
  // the reference TR run uses the smooth SIN directly.
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "p", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 0.3);
  circuit::SinSpec sin;
  sin.offset = 0.05;
  sin.amplitude = 0.05;
  sin.frequency = 0.5;
  n.add_current_source("I1", "b", "0", Waveform::sin(sin));
  const MnaSystem smooth_mna(n);

  Netlist n2;
  n2.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n2.add_resistor("R1", "p", "b", 1.0);
  n2.add_capacitor("C1", "b", "0", 0.3);
  n2.add_current_source(
      "I1", "b", "0",
      Waveform::sin(sin).linearized(0.0, 4.0, 1.0 / 128.0));
  const MnaSystem pwl_mna(n2);

  const auto dc = solver::dc_operating_point(smooth_mna);
  const auto ref = tr_reference(smooth_mna, dc.x, 4.0);

  MatexOptions opt;
  opt.kind = KrylovKind::kRational;
  opt.gamma = 0.1;
  opt.tolerance = 1e-9;
  MatexCircuitSolver solver(pwl_mna, opt);
  const FullInput input(pwl_mna);
  const auto grid = uniform_grid(0.0, 4.0, 0.25);
  StateRecorder rec;
  solver.run(dc.x, 0.0, 4.0, input, grid, rec.observer());
  for (std::size_t i = 0; i < rec.sample_count(); ++i) {
    const std::size_t ref_idx =
        static_cast<std::size_t>(std::llround(rec.times()[i] / 1e-4));
    // Error budget: PWL linearization of the sine (~(dt)^2/8 * |u''|).
    EXPECT_NEAR(rec.state(i)[0], ref.state(ref_idx)[0], 5e-5)
        << "t=" << rec.times()[i];
  }
}

TEST(MatexSolver, QuietEquilibriumSegmentsAreFree) {
  // DC input, starting from the operating point: x + F = 0 in every
  // segment, so no Krylov subspace is ever generated.
  ChainFixture f;
  Netlist quiet;
  quiet.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  quiet.add_resistor("R1", "p", "n1", 1.0);
  quiet.add_capacitor("C1", "n1", "0", 1.0);
  const MnaSystem mna(quiet);
  const auto dc = solver::dc_operating_point(mna);
  MatexOptions opt;
  opt.kind = KrylovKind::kRational;
  opt.gamma = 0.1;
  MatexCircuitSolver solver(mna, opt, dc.g_factors);
  const FullInput input(mna);
  const auto grid = uniform_grid(0.0, 10.0, 1.0);
  StateRecorder rec;
  const auto stats = solver.run(dc.x, 0.0, 10.0, input, grid,
                                rec.observer());
  EXPECT_EQ(stats.krylov_subspaces, 0);
  for (std::size_t i = 0; i < rec.sample_count(); ++i)
    EXPECT_NEAR(rec.state(i)[0], dc.x[0], 1e-12);
}

TEST(MatexSolver, SingularCHandledWithoutRegularization) {
  // Node r has no capacitor: C is singular. I-MATEX and R-MATEX never
  // factorize C (Sec. 3.3.3); MEXP must throw unless regularized.
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "p", "r", 1.0);
  n.add_resistor("R2", "r", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  n.add_current_source("I1", "b", "0",
                       Waveform::pulse(bump(0.2, 0.1, 0.3, 0.1, 0.2)));
  const MnaSystem mna(n);
  const auto dc = solver::dc_operating_point(mna);

  MatexOptions rational;
  rational.kind = KrylovKind::kRational;
  rational.gamma = 0.1;
  rational.tolerance = 1e-9;
  MatexCircuitSolver rat(mna, rational, dc.g_factors);

  MatexOptions inverted;
  inverted.kind = KrylovKind::kInverted;
  MatexCircuitSolver inv(mna, inverted, dc.g_factors);

  MatexOptions standard;
  standard.kind = KrylovKind::kStandard;
  EXPECT_THROW(MatexCircuitSolver bad(mna, standard, dc.g_factors),
               NumericalError);
  standard.c_regularization = 1e-8;
  MatexCircuitSolver mexp(mna, standard, dc.g_factors);

  // All runnable variants agree with the TR reference.
  const auto ref = tr_reference(mna, dc.x, 1.0);
  const FullInput input(mna);
  const auto grid = uniform_grid(0.0, 1.0, 0.05);
  for (MatexCircuitSolver* s : {&rat, &inv, &mexp}) {
    StateRecorder rec;
    s->run(dc.x, 0.0, 1.0, input, grid, rec.observer());
    for (std::size_t i = 0; i < rec.sample_count(); ++i) {
      const std::size_t ref_idx =
          static_cast<std::size_t>(std::llround(rec.times()[i] / 1e-4));
      // The regularized MEXP carries an O(delta) modeling error.
      EXPECT_NEAR(rec.state(i)[0], ref.state(ref_idx)[0], 1e-5);
    }
  }
}

TEST(MatexSolver, MexpRegularizationIsSignAwareOnKeptVsources) {
  // Regression: a *kept* voltage source makes the algebraic block of G
  // indefinite ([[G_pp, A], [A', 0]]), so the old uniform +delta
  // regularization handed -C^{-1}G a positive eigenvalue ~ g/delta and
  // MEXP overflowed to NaN within the first segment. The sign-aware
  // regularization (-delta on branch rows) keeps every spurious mode
  // decaying; the result must be finite and match R-MATEX closely.
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.8));
  n.add_resistor("Rp", "p", "b", 0.05);  // series strap, decap-free pad
  n.add_capacitor("C1", "b", "0", 2e-12);
  n.add_current_source(
      "I1", "b", "0",
      Waveform::pulse(bump(2e-10, 1e-10, 3e-10, 1e-10, 5e-3)));
  circuit::MnaOptions keep;
  keep.eliminate_grounded_vsources = false;
  const MnaSystem mna(n, keep);
  ASSERT_EQ(mna.dimension(), 3);  // b, p (algebraic), branch (algebraic)
  const auto dc = solver::dc_operating_point(mna);
  const auto grid = uniform_grid(0.0, 1.6e-9, 2e-11);
  const FullInput input(mna);

  MatexOptions standard;
  standard.kind = KrylovKind::kStandard;
  standard.max_dim = static_cast<int>(mna.dimension()) + 8;
  standard.c_regularization = 1e-18;  // the matex_cli default
  MatexCircuitSolver mexp(mna, standard, dc.g_factors);
  StateRecorder mexp_rec;
  mexp.run(dc.x, 0.0, 1.6e-9, input, grid, mexp_rec.observer());

  MatexOptions rational;
  rational.kind = KrylovKind::kRational;
  rational.gamma = 2e-10;
  rational.tolerance = 1e-9;
  MatexCircuitSolver rat(mna, rational, dc.g_factors);
  StateRecorder rat_rec;
  rat.run(dc.x, 0.0, 1.6e-9, input, grid, rat_rec.observer());

  ASSERT_EQ(mexp_rec.sample_count(), rat_rec.sample_count());
  for (std::size_t i = 0; i < mexp_rec.sample_count(); ++i)
    for (std::size_t k = 0; k < 3; ++k) {
      ASSERT_TRUE(std::isfinite(mexp_rec.state(i)[k])) << i << "," << k;
      EXPECT_NEAR(mexp_rec.state(i)[k], rat_rec.state(i)[k], 1e-6);
    }
}

TEST(MatexSolver, RegenerateAtEvalPointsMode) {
  ChainFixture f;
  const auto dc = solver::dc_operating_point(*f.mna);
  MatexOptions opt;
  opt.kind = KrylovKind::kRational;
  opt.gamma = 0.05;
  opt.regenerate_at_eval_points = true;
  MatexCircuitSolver solver(*f.mna, opt, dc.g_factors);
  const FullInput input(*f.mna);
  const auto grid = uniform_grid(0.0, 2.0, 0.1);
  const auto stats = solver.run(dc.x, 0.0, 2.0, input, grid, nullptr);
  // Every evaluation point becomes a segment boundary; quiet pre-pulse
  // segments still produce trivial (free) subspaces, so the count sits
  // between "many" and the full grid size.
  EXPECT_GT(stats.krylov_subspaces, 10);
}

TEST(MatexSolver, InvalidArgumentsThrow) {
  ChainFixture f;
  const auto dc = solver::dc_operating_point(*f.mna);
  MatexOptions opt;
  opt.tolerance = 0.0;
  EXPECT_THROW(MatexCircuitSolver bad(*f.mna, opt), InvalidArgument);
  opt = MatexOptions{};
  opt.max_dim = 0;
  EXPECT_THROW(MatexCircuitSolver bad2(*f.mna, opt), InvalidArgument);

  opt = MatexOptions{};
  opt.gamma = 0.1;
  MatexCircuitSolver solver(*f.mna, opt, dc.g_factors);
  const FullInput input(*f.mna);
  const std::vector<double> grid{0.5, 0.1};  // unsorted
  EXPECT_THROW(solver.run(dc.x, 0.0, 1.0, input, grid, nullptr),
               InvalidArgument);
  const std::vector<double> outside{0.0, 5.0};  // beyond t_end
  EXPECT_THROW(solver.run(dc.x, 0.0, 1.0, input, outside, nullptr),
               InvalidArgument);
  const std::vector<double> bad_x0(3, 0.0);
  EXPECT_THROW(
      solver.run(bad_x0, 0.0, 1.0, input, std::vector<double>{}, nullptr),
      InvalidArgument);
}

TEST(MatexSolver, StallThrowsWhenBudgetImpossible) {
  ChainFixture f;
  const auto dc = solver::dc_operating_point(*f.mna);
  MatexOptions opt;
  opt.kind = KrylovKind::kStandard;  // worst basis for this job
  opt.tolerance = 1e-14;
  opt.max_dim = 2;
  opt.stall_extension = 1.0;  // no rescue extension
  MatexCircuitSolver solver(*f.mna, opt, dc.g_factors);
  const FullInput input(*f.mna);
  const auto grid = uniform_grid(0.0, 2.0, 0.5);
  EXPECT_THROW(solver.run(dc.x, 0.0, 2.0, input, grid, nullptr),
               NumericalError);
}

TEST(MatexSolver, GammaInsensitivityAcrossADecade) {
  // Sec. 3.3.2: accuracy is "not very sensitive to gamma once it is set
  // around the order of the time steps".
  ChainFixture f;
  const auto dc = solver::dc_operating_point(*f.mna);
  const auto ref = tr_reference(*f.mna, dc.x, 2.0);
  const FullInput input(*f.mna);
  const auto grid = uniform_grid(0.0, 2.0, 0.1);
  for (double gamma : {0.02, 0.05, 0.1, 0.2, 0.5}) {
    MatexOptions opt;
    opt.kind = KrylovKind::kRational;
    opt.gamma = gamma;
    opt.tolerance = 1e-9;
    MatexCircuitSolver solver(*f.mna, opt, dc.g_factors);
    StateRecorder rec;
    solver.run(dc.x, 0.0, 2.0, input, grid, rec.observer());
    for (std::size_t i = 0; i < rec.sample_count(); ++i) {
      const std::size_t ref_idx =
          static_cast<std::size_t>(std::llround(rec.times()[i] / 1e-4));
      EXPECT_NEAR(rec.state(i)[0], ref.state(ref_idx)[0], 1e-5)
          << "gamma=" << gamma;
    }
  }
}

}  // namespace
}  // namespace matex::core
