/// \file test_obs.cpp
/// \brief Tests for the observability subsystem (src/obs/): span tracer
///        ring-buffer semantics, Chrome trace-event export validity,
///        concurrent emission (the TSan CI leg runs this binary), the
///        metrics registry, and PR 6's zero-perturbation guarantee --
///        waveforms must be bitwise-identical with tracing on or off.
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/batch.hpp"
#include "runtime/scenario.hpp"
#include "solver/dc.hpp"
#include "solver/json_writer.hpp"
#include "solver/observer.hpp"
#include "solver/tr_adaptive.hpp"
#include "test_util.hpp"

namespace matex::obs {
namespace {

using circuit::MnaSystem;
using circuit::Netlist;
using circuit::PulseSpec;
using circuit::Waveform;
using solver::JsonValue;
using solver::StateRecorder;
using solver::parse_json;
using solver::uniform_grid;

/// Tracing/metrics are process-global; every test leaves them disabled and
/// drained so tests stay order-independent.
struct ObsTest : ::testing::Test {
  void SetUp() override {
    stop_tracing();
    disable_metrics();
    discard_trace();
  }
  void TearDown() override {
    stop_tracing();
    disable_metrics();
    discard_trace();
  }
};

/// Counts events named `name` in a parsed trace document.
int count_events(const JsonValue& doc, std::string_view name) {
  int n = 0;
  for (const JsonValue& ev : doc.at("traceEvents").array)
    if (ev.at("name").as_string() == name) ++n;
  return n;
}

const JsonValue* find_event(const JsonValue& doc, std::string_view name) {
  for (const JsonValue& ev : doc.at("traceEvents").array)
    if (ev.at("name").as_string() == name) return &ev;
  return nullptr;
}

/// Small RC fixture with two pulsed loads (two scheduler groups).
Netlist two_group_netlist() {
  Netlist netlist;
  netlist.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  netlist.add_resistor("Rp", "p", "a0", 0.2);
  const char* chain[] = {"a0", "a1", "a2", "a3"};
  for (int i = 0; i < 4; ++i) {
    netlist.add_capacitor(testing::numbered("C", i), chain[i], "0", 0.3);
    if (i + 1 < 4)
      netlist.add_resistor(testing::numbered("R", i), chain[i],
                           chain[i + 1], 0.5);
  }
  PulseSpec bump;
  bump.v1 = 0.0;
  bump.v2 = 0.2;
  bump.delay = 0.3;
  bump.rise = 0.1;
  bump.width = 0.2;
  bump.fall = 0.1;
  netlist.add_current_source("I1", "a1", "0", Waveform::pulse(bump));
  bump.delay = 0.8;
  bump.v2 = 0.1;
  netlist.add_current_source("I2", "a3", "0", Waveform::pulse(bump));
  return netlist;
}

// ------------------------------------------------------------ span tracer

TEST_F(ObsTest, DisabledTracingEmitsNothing) {
  {
    MATEX_SPAN("should_not_appear", "n", 3);
    instant("also_not", "k", 1.0);
  }
  EXPECT_EQ(buffered_event_count(), 0);
  const JsonValue doc = parse_json(chrome_trace_json());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST_F(ObsTest, SpanExportIsValidChromeTraceJson) {
  start_tracing();
  {
    MATEX_SPAN("outer", "n", 42, "label", "lit");
    MATEX_SPAN("inner");
  }
  instant("tick", "k", 7);
  stop_tracing();

  const std::string json = chrome_trace_json();
  const JsonValue doc = parse_json(json);  // throws on malformed output
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  EXPECT_EQ(doc.at("droppedEvents").as_number(), 0.0);

  const JsonValue* outer = find_event(doc, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->at("ph").as_string(), "X");
  EXPECT_EQ(outer->at("cat").as_string(), "matex");
  EXPECT_GE(outer->at("dur").as_number(), 0.0);
  EXPECT_GE(outer->at("ts").as_number(), 0.0);
  EXPECT_EQ(outer->at("args").at("n").as_number(), 42.0);
  EXPECT_EQ(outer->at("args").at("label").as_string(), "lit");

  ASSERT_NE(find_event(doc, "inner"), nullptr);
  const JsonValue* tick = find_event(doc, "tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->at("ph").as_string(), "i");
  EXPECT_EQ(tick->at("s").as_string(), "t");

  // The export drains the rings.
  EXPECT_EQ(buffered_event_count(), 0);
}

TEST_F(ObsTest, LateArgsAndNullStringAttributes) {
  start_tracing();
  {
    Span span("late", "fixed", 1);
    span.arg("result", 3.5).arg("skipped", static_cast<const char*>(nullptr));
  }
  stop_tracing();
  const JsonValue doc = parse_json(chrome_trace_json());
  const JsonValue* ev = find_event(doc, "late");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->at("args").at("result").as_number(), 3.5);
  EXPECT_EQ(ev->at("args").find("skipped"), nullptr);
}

TEST_F(ObsTest, ConcurrentSpanEmission) {
  // 8 producers x 2000 spans, each into its own SPSC ring: the sanitize CI
  // matrix runs this under TSan to prove the protocol race-free.
  start_tracing();
  constexpr int kThreads = 8;
  constexpr int kSpans = 2000;
  std::atomic<int> sink{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&sink, t] {
      set_thread_name(intern(testing::numbered("emitter-", t)));
      for (int i = 0; i < kSpans; ++i) {
        MATEX_SPAN("worker_span", "thread", t, "i", i);
        sink.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : threads) t.join();
  stop_tracing();

  EXPECT_EQ(dropped_event_count(), 0);
  const JsonValue doc = parse_json(chrome_trace_json());
  EXPECT_EQ(count_events(doc, "worker_span"), kThreads * kSpans);
  EXPECT_EQ(count_events(doc, "thread_name"), kThreads);
}

TEST_F(ObsTest, RingOverflowDropsAndCountsWithoutBlocking) {
  TraceOptions options;
  options.ring_capacity = 64;
  start_tracing(options);
  // A fresh thread gets a ring with the tiny capacity; its producer must
  // never block or overwrite once the ring is full.
  std::thread emitter([] {
    for (int i = 0; i < 200; ++i) MATEX_SPAN("flood", "i", i);
  });
  emitter.join();
  stop_tracing();

  EXPECT_EQ(dropped_event_count(), 200 - 64);
  const JsonValue doc = parse_json(chrome_trace_json());
  EXPECT_EQ(count_events(doc, "flood"), 64);
  EXPECT_EQ(doc.at("droppedEvents").as_number(), 200.0 - 64.0);
}

TEST_F(ObsTest, RepeatedSessionsDiscardStaleEvents) {
  start_tracing();
  { MATEX_SPAN("stale"); }
  stop_tracing();
  // Undrained events from the first session must not leak into the next.
  start_tracing();
  { MATEX_SPAN("fresh"); }
  stop_tracing();
  const JsonValue doc = parse_json(chrome_trace_json());
  EXPECT_EQ(count_events(doc, "stale"), 0);
  EXPECT_EQ(count_events(doc, "fresh"), 1);
}

// -------------------------------------------------------- solver coverage

TEST_F(ObsTest, SolverPhasesAndSchedulerIdentityAppearInTrace) {
  runtime::BatchOptions bopt;
  bopt.threads = 2;
  runtime::BatchEngine engine(bopt);
  engine.add_deck("deck", two_group_netlist());

  runtime::CampaignSweep sweep;
  sweep.methods = {krylov::KrylovKind::kRational};
  sweep.gammas = {0.05};
  sweep.tolerances = {1e-8};
  sweep.base.t_end = 2.0;
  sweep.base.output_times = uniform_grid(0.0, 2.0, 0.1);
  const auto scenarios = engine.expand(sweep);
  ASSERT_FALSE(scenarios.empty());

  start_tracing();
  const auto report = engine.run(scenarios);
  stop_tracing();
  ASSERT_EQ(report.failures, 0);

  const JsonValue doc = parse_json(chrome_trace_json());
  // Phase attribution: assembly, factorization, solves and Krylov.
  EXPECT_GT(count_events(doc, "factor") + count_events(doc, "refactor"), 0);
  EXPECT_GT(count_events(doc, "solve"), 0);
  EXPECT_GT(count_events(doc, "arnoldi"), 0);
  EXPECT_GT(count_events(doc, "dc"), 0);
  // Cache event stream.
  EXPECT_GT(count_events(doc, "cache.miss"), 0);
  // Per-task scheduler spans carry scenario/node identity.
  const JsonValue* node = find_event(doc, "node");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->at("args").at("scenario").as_string(), scenarios[0].name);
  EXPECT_GE(node->at("args").at("node").as_number(), 0.0);
  const JsonValue* scenario = find_event(doc, "scenario");
  ASSERT_NE(scenario, nullptr);
  EXPECT_EQ(scenario->at("args").at("name").as_string(), scenarios[0].name);
  EXPECT_GT(count_events(doc, "task"), 0);
  EXPECT_GT(count_events(doc, "superpose"), 0);
}

TEST_F(ObsTest, WaveformsBitwiseIdenticalTracingOnOrOff) {
  const Netlist netlist = two_group_netlist();
  const MnaSystem mna(netlist);
  const auto dc = solver::dc_operating_point(mna);

  solver::AdaptiveTrOptions topt;
  topt.t_end = 1.0;
  topt.h_init = 1e-3;
  topt.lte_tol = 1e-6;
  topt.output_times = uniform_grid(0.0, 1.0, 0.05);

  core::SchedulerOptions sopt;
  sopt.t_end = 2.0;
  sopt.solver.gamma = 0.05;
  sopt.solver.tolerance = 1e-9;
  sopt.output_times = uniform_grid(0.0, 2.0, 0.1);

  const auto run_both = [&](StateRecorder& tr, StateRecorder& dist) {
    run_adaptive_trapezoidal(mna, dc.x, topt, tr.observer());
    core::run_distributed_matex(mna, sopt, dist.observer());
  };

  StateRecorder tr_off, dist_off;
  run_both(tr_off, dist_off);

  start_tracing();
  enable_metrics();
  StateRecorder tr_on, dist_on;
  run_both(tr_on, dist_on);
  stop_tracing();
  disable_metrics();

  const auto expect_bitwise = [](const StateRecorder& a,
                                 const StateRecorder& b) {
    ASSERT_EQ(a.sample_count(), b.sample_count());
    for (std::size_t i = 0; i < a.sample_count(); ++i) {
      ASSERT_EQ(a.state(i).size(), b.state(i).size());
      // memcmp, not ==: bitwise identity is the guarantee (NaN-safe, no
      // -0.0 aliasing).
      EXPECT_EQ(std::memcmp(a.state(i).data(), b.state(i).data(),
                            a.state(i).size() * sizeof(double)),
                0)
          << "sample " << i;
    }
  };
  expect_bitwise(tr_off, tr_on);
  expect_bitwise(dist_off, dist_on);
}

// ----------------------------------------------------------------- metrics

TEST_F(ObsTest, HistogramBucketsAndMoments) {
  Histogram h(1.0, 1e4);
  h.record(0.5);    // underflow (<= lo)
  h.record(1.0);    // underflow boundary
  h.record(2.0);
  h.record(100.0);
  h.record(2e4);    // overflow
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.underflow, 2);
  EXPECT_EQ(s.overflow, 1);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 2e4);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 2.0 + 100.0 + 2e4);
  long long bucketed = 0;
  for (const long long b : s.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 2);
  // Bucket edges are geometric over (lo, hi].
  EXPECT_DOUBLE_EQ(s.edge(0), 1.0);
  EXPECT_NEAR(s.edge(Histogram::kBucketCount), 1e4, 1e-8 * 1e4);
}

TEST_F(ObsTest, ConcurrentCountersAndHistograms) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& counter = reg.counter("test.obs.concurrent");
  Histogram& hist = reg.histogram("test.obs.hist", 1e-3, 1e3);
  counter.reset();
  hist.reset();
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        counter.add();
        hist.record(1.0);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kOps);
  const auto s = hist.snapshot();
  EXPECT_EQ(s.count, kThreads * kOps);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kThreads * kOps));
}

TEST_F(ObsTest, RegistryJsonRoundTrips) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test.obs.json_counter").reset();
  reg.counter("test.obs.json_counter").add(3);
  reg.gauge("test.obs.json_gauge").set(2.5);
  Histogram& hist = reg.histogram("test.obs.json_hist", 1.0, 100.0);
  hist.reset();
  hist.record(10.0);

  solver::JsonWriter w;
  w.begin_object();
  w.key("metrics");
  reg.write_json(w);
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  const JsonValue& m = doc.at("metrics");
  EXPECT_EQ(m.at("counters").at("test.obs.json_counter").as_number(), 3.0);
  EXPECT_EQ(m.at("gauges").at("test.obs.json_gauge").as_number(), 2.5);
  const JsonValue& h = m.at("histograms").at("test.obs.json_hist");
  EXPECT_EQ(h.at("count").as_number(), 1.0);
  EXPECT_EQ(h.at("mean").as_number(), 10.0);
}

TEST_F(ObsTest, MetricsGateKeepsHotPathsSilent) {
  MetricsRegistry::global().histogram("tradpt.step_size", 1e-15, 1e-3).reset();
  const Netlist netlist = two_group_netlist();
  const MnaSystem mna(netlist);
  const auto dc = solver::dc_operating_point(mna);
  solver::AdaptiveTrOptions topt;
  topt.t_end = 0.5;
  topt.h_init = 1e-3;
  topt.lte_tol = 1e-6;

  // Disabled: the solver must not record anything.
  run_adaptive_trapezoidal(mna, dc.x, topt, {});
  EXPECT_EQ(MetricsRegistry::global()
                .histogram("tradpt.step_size", 1e-15, 1e-3)
                .snapshot()
                .count,
            0);

  enable_metrics();
  const auto stats = run_adaptive_trapezoidal(mna, dc.x, topt, {});
  disable_metrics();
  EXPECT_EQ(MetricsRegistry::global()
                .histogram("tradpt.step_size", 1e-15, 1e-3)
                .snapshot()
                .count,
            stats.steps);
}

}  // namespace
}  // namespace matex::obs
