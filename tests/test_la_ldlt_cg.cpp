#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/cg.hpp"
#include "la/error.hpp"
#include "la/sparse_ldlt.hpp"
#include "la/sparse_lu.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

std::vector<double> residual(const CscMatrix& a, std::span<const double> x,
                             std::span<const double> b) {
  std::vector<double> r(b.begin(), b.end());
  a.multiply_add(-1.0, x, r);
  return r;
}

// ------------------------------------------------------------------ LDLT

TEST(SparseLDLT, SolvesIdentity) {
  const auto eye = CscMatrix::identity(5);
  const SparseLDLT f(eye);
  std::vector<double> b{1, 2, 3, 4, 5};
  const auto x = f.solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
  EXPECT_TRUE(f.positive_definite());
  EXPECT_EQ(f.nnz_l(), 0);  // strictly lower triangle of I is empty
}

TEST(SparseLDLT, MatchesLuOnGridLaplacian) {
  const auto g = testing::grid_laplacian(8, 9, 0.3);
  testing::Rng rng(5);
  const auto b =
      testing::random_vector(static_cast<std::size_t>(g.rows()), rng);
  const auto x_ldlt = SparseLDLT(g).solve(b);
  const auto x_lu = SparseLU(g).solve(b);
  for (std::size_t i = 0; i < x_lu.size(); ++i)
    EXPECT_NEAR(x_ldlt[i], x_lu[i], 1e-10);
}

TEST(SparseLDLT, DetectsIndefiniteness) {
  // diag(1, -2) is symmetric indefinite but factorizable.
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -2.0);
  const SparseLDLT f(t.to_csc());
  EXPECT_FALSE(f.positive_definite());
  std::vector<double> b{2.0, 4.0};
  const auto x = f.solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-14);
  EXPECT_NEAR(x[1], -2.0, 1e-14);
}

TEST(SparseLDLT, ThrowsOnSingular) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 1.0);  // rank 1
  EXPECT_THROW(SparseLDLT f(t.to_csc()), NumericalError);
}

TEST(SparseLDLT, RejectsUnsymmetricPattern) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, 0.5);  // no (1,0) partner
  EXPECT_THROW(SparseLDLT f(t.to_csc()), InvalidArgument);
}

TEST(SparseLDLT, FillIsNoWorseThanLuOnSpdSystems) {
  const auto g = testing::grid_laplacian(15, 15, 0.1);
  const SparseLDLT chol(g);
  const SparseLU lu(g);
  // L of LDLT ~ half of L+U of LU.
  EXPECT_LT(chol.nnz_l(), lu.nnz_l() + lu.nnz_u());
}

class LdltPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LdltPropertyTest, RandomSpdSystemsSolve) {
  testing::Rng rng(GetParam());
  const index_t n = static_cast<index_t>(8 + rng.index(60));
  const auto a = testing::random_sparse_spd_like(n, 0.15, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const SparseLDLT f(a);
  EXPECT_TRUE(f.positive_definite());  // diagonally dominant => SPD
  const auto x = f.solve(b);
  const double scale = a.norm1() * norm_inf(x) + norm_inf(b);
  EXPECT_LE(norm_inf(residual(a, x, b)), 1e-12 * scale);
}

TEST_P(LdltPropertyTest, AgreesWithLu) {
  testing::Rng rng(GetParam() + 400);
  const index_t n = static_cast<index_t>(5 + rng.index(40));
  const auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto x1 = SparseLDLT(a).solve(b);
  const auto x2 = SparseLU(a).solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i)
    EXPECT_NEAR(x1[i], x2[i], 1e-9 * (1.0 + std::abs(x2[i])));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LdltPropertyTest,
                         ::testing::Range<std::size_t>(1, 13));

// -------------------------------------------------------------------- CG

TEST(ConjugateGradient, SolvesDiagonalSystem) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 4.0);
  t.add(2, 2, 8.0);
  const auto a = t.to_csc();
  std::vector<double> b{2.0, 4.0, 8.0};
  const auto r = conjugate_gradient(a, b);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r.x[i], 1.0, 1e-9);
}

TEST(ConjugateGradient, ZeroRhsConvergesImmediately) {
  const auto eye = CscMatrix::identity(4);
  const std::vector<double> b(4, 0.0);
  const auto r = conjugate_gradient(eye, b);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(ConjugateGradient, GridLaplacianWithPreconditioners) {
  const auto g = testing::grid_laplacian(20, 20, 0.01);
  testing::Rng rng(7);
  const auto b =
      testing::random_vector(static_cast<std::size_t>(g.rows()), rng);
  CgOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 2000;

  const auto plain = conjugate_gradient(g, b, opt);
  const auto jacobi = conjugate_gradient(g, b, opt,
                                         jacobi_preconditioner(g));
  const auto ssor = conjugate_gradient(g, b, opt, ssor_preconditioner(g));
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(jacobi.converged);
  EXPECT_TRUE(ssor.converged);
  // SSOR must beat plain CG on a grid Laplacian.
  EXPECT_LT(ssor.iterations, plain.iterations);

  // All three agree with the direct solution.
  const auto xd = SparseLDLT(g).solve(b);
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(plain.x[i], xd[i], 1e-6);
    EXPECT_NEAR(ssor.x[i], xd[i], 1e-6);
  }
}

TEST(ConjugateGradient, IndefiniteMatrixThrows) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const auto a = t.to_csc();
  std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(conjugate_gradient(a, b), NumericalError);
}

TEST(ConjugateGradient, ReportsNonConvergenceHonestly) {
  const auto g = testing::grid_laplacian(30, 30, 1e-6);  // ill-conditioned
  testing::Rng rng(8);
  const auto b =
      testing::random_vector(static_cast<std::size_t>(g.rows()), rng);
  CgOptions opt;
  opt.max_iterations = 3;
  opt.tolerance = 1e-14;
  const auto r = conjugate_gradient(g, b, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_GT(r.relative_residual, 1e-14);
}

TEST(ConjugateGradient, JacobiRejectsZeroDiagonal) {
  TripletMatrix t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  EXPECT_THROW(jacobi_preconditioner(t.to_csc()), InvalidArgument);
}

class CgPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgPropertyTest, MatchesDirectSolveOnRandomSpd) {
  testing::Rng rng(GetParam());
  const index_t n = static_cast<index_t>(10 + rng.index(50));
  const auto a = testing::random_sparse_spd_like(n, 0.15, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  CgOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 5000;
  const auto cg = conjugate_gradient(a, b, opt, jacobi_preconditioner(a));
  EXPECT_TRUE(cg.converged);
  const auto xd = SparseLDLT(a).solve(b);
  for (std::size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(cg.x[i], xd[i], 1e-7 * (1.0 + std::abs(xd[i])));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgPropertyTest,
                         ::testing::Range<std::size_t>(1, 11));

}  // namespace
}  // namespace matex::la
