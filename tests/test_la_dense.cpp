#include "la/dense_matrix.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/dense_lu.hpp"
#include "la/error.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(DenseMatrix, ZeroInitialized) {
  DenseMatrix m(3, 2);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(DenseMatrix, IdentityHasOnesOnDiagonal) {
  const auto eye = DenseMatrix::identity(4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

TEST(DenseMatrix, ColumnMajorLayout) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(0, 1) = 3.0;
  m(1, 1) = 4.0;
  const auto d = m.data();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 4.0);
}

TEST(DenseMatrix, MultiplyMatchesHandComputation) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6]
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  std::vector<double> x{1.0, 0.0, -1.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  std::vector<double> z{1.0, 1.0};
  std::vector<double> w(3);
  m.multiply_transpose(z, w);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(DenseMatrix, MatmulAssociatesWithIdentity) {
  testing::Rng rng(3);
  const auto a = testing::random_dense(5, rng);
  const auto eye = DenseMatrix::identity(5);
  EXPECT_LE(max_abs_diff(a.matmul(eye), a), 1e-15);
  EXPECT_LE(max_abs_diff(eye.matmul(a), a), 1e-15);
}

TEST(DenseMatrix, TransposeIsInvolution) {
  testing::Rng rng(4);
  const auto a = testing::random_dense(6, rng);
  EXPECT_LE(max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(DenseMatrix, Norm1IsMaxColumnSum) {
  DenseMatrix m(2, 2);
  m(0, 0) = 1;
  m(1, 0) = -2;
  m(0, 1) = 3;
  m(1, 1) = 0.5;
  EXPECT_DOUBLE_EQ(m.norm1(), 3.5);
}

TEST(DenseMatrix, TopLeftExtractsPrincipalSubmatrix) {
  testing::Rng rng(5);
  const auto a = testing::random_dense(5, rng);
  const auto s = a.top_left(3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(s(i, j), a(i, j));
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  DenseMatrix a(2, 3), b(2, 2);
  EXPECT_THROW(a.add_scaled(1.0, b), InvalidArgument);
  std::vector<double> x(2), y(2);
  EXPECT_THROW(a.multiply(x, y), InvalidArgument);
}

TEST(DenseLU, SolvesHandPickedSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  std::vector<double> b{5.0, 10.0};
  const auto x = DenseLU(a).solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLU, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  std::vector<double> b{2.0, 3.0};
  const auto x = DenseLU(a).solve(b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(DenseLU, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(DenseLU lu(a), NumericalError);
}

TEST(DenseLU, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(DenseLU lu(a), InvalidArgument);
}

TEST(DenseLU, InverseTimesMatrixIsIdentity) {
  testing::Rng rng(7);
  auto a = testing::random_dense(8, rng);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) += 8.0;  // well-conditioned
  const auto inv = DenseLU(a).inverse();
  EXPECT_LE(max_abs_diff(a.matmul(inv), DenseMatrix::identity(8)), 1e-12);
}

class DenseLuPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseLuPropertyTest, ResidualIsTiny) {
  testing::Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(40);
  auto a = testing::random_dense(n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  const auto b = testing::random_vector(n, rng);
  const auto x = DenseLU(a).solve(b);
  std::vector<double> ax(n);
  a.multiply(x, ax);
  EXPECT_NEAR(max_abs_diff(std::span<const double>(ax),
                           std::span<const double>(b)),
              0.0, 1e-10);
}

TEST_P(DenseLuPropertyTest, SolveMatchesInverseApply) {
  testing::Rng rng(GetParam() + 1000);
  const std::size_t n = 2 + rng.index(20);
  auto a = testing::random_dense(n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  const auto b = testing::random_vector(n, rng);
  DenseLU lu(a);
  const auto x1 = lu.solve(b);
  std::vector<double> x2(n);
  lu.inverse().multiply(b, x2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseLuPropertyTest,
                         ::testing::Range<std::size_t>(1, 16));

}  // namespace
}  // namespace matex::la
