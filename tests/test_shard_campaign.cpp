/// \file test_shard_campaign.cpp
/// \brief Sharded multi-process campaigns: shard placement, the
///        BatchEngine shard filter, and the end-to-end coordinator/worker
///        flow through matex_cli -- merged report and binary store must
///        be bitwise-identical at 1/2/4 workers, including after a worker
///        is killed mid-campaign and its shard resumes from the journal.
///
/// The CLI tests compile only when CMake can point MATEX_CLI_PATH at the
/// built matex_cli (the sanitizer CI legs build with examples off; those
/// runs skip them).

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/netlist.hpp"
#include "runtime/batch.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/shard.hpp"
#include "solver/fixed_step.hpp"

#ifdef __unix__
#include <sys/wait.h>
#endif

namespace matex::runtime {
namespace {

using circuit::Netlist;
using circuit::Waveform;
using solver::uniform_grid;

// --------------------------------------------------------------- shard_of

TEST(ShardOf, StableInRangeAndExhaustive) {
  // Placement is an on-disk contract: same fingerprint, same shard,
  // every shard reachable.
  for (const int count : {1, 2, 3, 4, 7, 16}) {
    std::set<int> seen;
    for (std::uint64_t fp = 1; fp < 4096; ++fp) {
      const int s = shard_of(fp, count);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, count);
      ASSERT_EQ(s, shard_of(fp, count)) << "placement must be pure";
      seen.insert(s);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(count));
  }
}

TEST(ShardOf, SingleShardOwnsEverything) {
  EXPECT_EQ(shard_of(0, 1), 0);
  EXPECT_EQ(shard_of(~0ull, 1), 0);
}

// ------------------------------------------------- BatchEngine filtering

/// Three-bump PDN (mirrors test_runtime.cpp) -- small enough that a
/// six-scenario campaign is cheap, structured enough to be non-trivial.
Netlist make_pdn() {
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n.add_resistor("Rp", "p", "m00", 0.2);
  const char* nodes[] = {"m00", "m01", "m10", "m11"};
  n.add_resistor("R1", "m00", "m01", 0.5);
  n.add_resistor("R2", "m10", "m11", 0.5);
  n.add_resistor("R3", "m00", "m10", 0.5);
  n.add_resistor("R4", "m01", "m11", 0.5);
  for (const char* node : nodes)
    n.add_capacitor(std::string("C") + node, node, "0", 0.3);
  circuit::PulseSpec bump;
  bump.v2 = 0.3;
  bump.delay = 0.1;
  bump.rise = 0.2;
  bump.width = 0.1;
  bump.fall = 0.2;
  n.add_current_source("I1", "m01", "0", Waveform::pulse(bump));
  bump.v2 = 0.9;
  bump.delay = 0.5;
  n.add_current_source("I2", "m10", "0", Waveform::pulse(bump));
  return n;
}

std::vector<ScenarioSpec> pdn_campaign(BatchEngine& engine) {
  CampaignSweep sweep;
  sweep.methods = {krylov::KrylovKind::kRational,
                   krylov::KrylovKind::kInverted};
  sweep.gammas = {0.05, 0.1};
  sweep.tolerances = {1e-8, 1e-10};
  sweep.base.t_end = 2.0;
  sweep.base.solver.gamma = 0.05;
  sweep.base.solver.tolerance = 1e-10;
  sweep.base.output_times = uniform_grid(0.0, 2.0, 0.25);
  sweep.probes = {0, 1};
  return engine.expand(sweep);
}

TEST(BatchEngineShard, ShardsPartitionTheCampaignBitwise) {
  // Reference: unsharded run.
  BatchOptions ref_opt;
  ref_opt.threads = 2;
  BatchEngine ref_engine(ref_opt);
  ref_engine.add_deck("pdn", make_pdn());
  const auto scenarios = pdn_campaign(ref_engine);
  ASSERT_EQ(scenarios.size(), 6u);
  const auto ref = ref_engine.run(scenarios);
  ASSERT_EQ(ref.failures, 0);

  // Three shards, three engines: every scenario must run in exactly one
  // shard, with waveforms bitwise-equal to the unsharded run.
  std::vector<int> ran_in(scenarios.size(), -1);
  long long sharded_out_total = 0;
  const int kShards = 3;
  for (int shard = 0; shard < kShards; ++shard) {
    BatchOptions opt;
    opt.threads = 2;
    opt.shard_count = kShards;
    opt.shard_index = shard;
    BatchEngine engine(opt);
    engine.add_deck("pdn", make_pdn());
    const auto report = engine.run(scenarios);
    EXPECT_EQ(report.failures, 0);
    sharded_out_total += report.sharded_out;
    for (std::size_t si = 0; si < scenarios.size(); ++si) {
      const ScenarioResult& r = report.results[si];
      if (r.attempts == 0) continue;  // foreign shard: untouched slot
      EXPECT_EQ(ran_in[si], -1) << "scenario ran in two shards";
      ran_in[si] = shard;
      ASSERT_TRUE(r.ok);
      ASSERT_EQ(r.probe_waveforms.size(),
                ref.results[si].probe_waveforms.size());
      for (std::size_t p = 0; p < r.probe_waveforms.size(); ++p) {
        ASSERT_EQ(r.probe_waveforms[p].size(),
                  ref.results[si].probe_waveforms[p].size());
        for (std::size_t i = 0; i < r.probe_waveforms[p].size(); ++i)
          EXPECT_EQ(
              std::bit_cast<std::uint64_t>(r.probe_waveforms[p][i]),
              std::bit_cast<std::uint64_t>(
                  ref.results[si].probe_waveforms[p][i]));
      }
    }
  }
  for (std::size_t si = 0; si < scenarios.size(); ++si)
    EXPECT_NE(ran_in[si], -1) << "scenario ran in no shard";
  EXPECT_EQ(sharded_out_total,
            static_cast<long long>((kShards - 1) * scenarios.size()));
}

TEST(BatchEngineShard, ShardAssignmentMatchesFingerprints) {
  // The engine's filter must agree with the public shard_of contract on
  // the journal fingerprints -- that is what lets workers and offline
  // tooling compute membership independently.
  BatchOptions opt;
  opt.threads = 1;
  opt.shard_count = 4;
  opt.shard_index = 2;
  BatchEngine engine(opt);
  engine.add_deck("pdn", make_pdn());
  const auto scenarios = pdn_campaign(engine);
  const auto report = engine.run(scenarios);
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const bool mine =
        shard_of(scenario_fingerprint(scenarios[si], "pdn"), 4) == 2;
    EXPECT_EQ(report.results[si].attempts > 0, mine);
  }
}

// ------------------------------------------------------ CLI fleet tests

#if defined(MATEX_CLI_PATH) && defined(__unix__)

int run_cli(const std::string& args, const std::string& log) {
  const std::string cmd =
      std::string(MATEX_CLI_PATH) + " " + args + " 2> " + log;
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Journals persist across ctest invocations; a stale one would turn the
/// runs below into pure restores (and the kill test would never kill).
void fresh_journals(const std::string& prefix) {
  for (int k = -1; k < 8; ++k) {
    const std::string path =
        k < 0 ? prefix + ".jsonl"
              : prefix + ".jsonl.shard" + std::to_string(k);
    std::remove(path.c_str());
  }
}

TEST(ShardedCampaignCli, StoreBitwiseIdenticalAt124Workers) {
  fresh_journals("shardcli_cp1");
  fresh_journals("shardcli_cp2");
  fresh_journals("shardcli_cp4");
  ASSERT_EQ(run_cli("--batch --threads 2 --checkpoint shardcli_cp1.jsonl"
                    " --store shardcli_1.store",
                    "shardcli_1.log"),
            0);
  ASSERT_EQ(run_cli("--batch --threads 2 --shards 2"
                    " --checkpoint shardcli_cp2.jsonl"
                    " --store shardcli_2.store",
                    "shardcli_2.log"),
            0);
  ASSERT_EQ(run_cli("--batch --threads 2 --shards 4"
                    " --checkpoint shardcli_cp4.jsonl"
                    " --store shardcli_4.store",
                    "shardcli_4.log"),
            0);
  const std::string single = slurp("shardcli_1.store");
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(slurp("shardcli_2.store"), single);
  EXPECT_EQ(slurp("shardcli_4.store"), single);
}

TEST(ShardedCampaignCli, KilledWorkersResumeBitwiseIdentical) {
  fresh_journals("shardkill_ref");
  fresh_journals("shardkill_cp");
  ASSERT_EQ(run_cli("--batch --threads 2 --checkpoint shardkill_ref.jsonl"
                    " --store shardkill_ref.store",
                    "shardkill_ref.log"),
            0);
  // Every worker _Exits (as if kill -9) after journaling one fresh
  // scenario; respawns resume from the shard journals and the
  // coordinator's restore-run computes whatever the fleet never
  // finished. The merged store must not show any of that.
  const std::string cmd =
      std::string("MATEX_WORKER_EXIT_AFTER=1 ") + MATEX_CLI_PATH +
      " --batch --threads 2 --shards 2 --checkpoint shardkill_cp.jsonl"
      " --store shardkill.store 2> shardkill.log";
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  const std::string log = slurp("shardkill.log");
  EXPECT_NE(log.find("exit 137"), std::string::npos)
      << "expected at least one simulated worker kill:\n"
      << log;
  const std::string ref = slurp("shardkill_ref.store");
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(slurp("shardkill.store"), ref);
}

#else

TEST(ShardedCampaignCli, DISABLED_RequiresCliBinary) {}

#endif  // MATEX_CLI_PATH && __unix__

}  // namespace
}  // namespace matex::runtime
