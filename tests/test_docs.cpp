/// \file test_docs.cpp
/// \brief Keeps the documentation tree wired to reality: docs/CLI.md's
///        flags section must list exactly the flags `matex_cli --help`
///        prints (diffed both directions), and every relative markdown
///        link in README.md + docs/ must point at a file that exists.
///
/// The flag diff needs the built matex_cli (MATEX_CLI_PATH); the
/// sanitizer CI legs build with examples off and skip it. The link
/// check only needs the source tree (MATEX_REPO_ROOT).

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Every `--flag` token in `text`: a "--" run followed by a lowercase
/// letter, extending over [a-z0-9-]. Table rules (`---|`), HTML comment
/// fences (`<!--`) and prose dashes never start with "--" + letter, so
/// no filtering is needed beyond the grammar itself.
std::set<std::string> flag_tokens(const std::string& text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && text[i - 1] == '-') continue;  // inside a ---- rule
    std::size_t j = i + 2;
    if (!std::islower(static_cast<unsigned char>(text[j]))) continue;
    while (j < text.size() &&
           (std::islower(static_cast<unsigned char>(text[j])) ||
            std::isdigit(static_cast<unsigned char>(text[j])) ||
            text[j] == '-'))
      ++j;
    std::string flag = text.substr(i, j - i);
    while (!flag.empty() && flag.back() == '-') flag.pop_back();
    flags.insert(flag);
    i = j - 1;
  }
  return flags;
}

std::string repo_path(const std::string& rel) {
  return std::string(MATEX_REPO_ROOT) + "/" + rel;
}

// ------------------------------------------------- CLI.md vs --help

#if defined(MATEX_CLI_PATH) && defined(__unix__)

TEST(DocsCli, FlagsSectionMatchesHelpOutput) {
  const std::string doc = slurp(repo_path("docs/CLI.md"));
  const std::string begin_marker = "<!-- flags:begin -->";
  const std::string end_marker = "<!-- flags:end -->";
  const std::size_t begin = doc.find(begin_marker);
  const std::size_t end = doc.find(end_marker);
  ASSERT_NE(begin, std::string::npos) << "docs/CLI.md lost " << begin_marker;
  ASSERT_NE(end, std::string::npos) << "docs/CLI.md lost " << end_marker;
  ASSERT_LT(begin, end);
  const std::set<std::string> documented = flag_tokens(
      doc.substr(begin, end - begin));

  std::FILE* pipe =
      popen((std::string(MATEX_CLI_PATH) + " --help").c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string help;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    help.append(buf, got);
  ASSERT_EQ(pclose(pipe), 0) << "--help must exit 0";
  const std::set<std::string> printed = flag_tokens(help);
  ASSERT_FALSE(printed.empty());

  for (const std::string& flag : printed)
    EXPECT_TRUE(documented.count(flag))
        << flag << " is in --help but missing from docs/CLI.md's "
        << "flags section";
  for (const std::string& flag : documented)
    EXPECT_TRUE(printed.count(flag))
        << flag << " is documented in docs/CLI.md but absent from "
        << "--help (stale docs or help must mention it)";
}

#else

TEST(DocsCli, DISABLED_RequiresCliBinary) {}

#endif  // MATEX_CLI_PATH && __unix__

// --------------------------------------------------- relative links

TEST(DocsLinks, RelativeTargetsExist) {
  namespace fs = std::filesystem;
  std::vector<std::string> pages = {repo_path("README.md")};
  for (const auto& entry : fs::directory_iterator(repo_path("docs")))
    if (entry.path().extension() == ".md")
      pages.push_back(entry.path().string());
  ASSERT_GE(pages.size(), 7u);

  for (const std::string& page : pages) {
    const std::string text = slurp(page);
    const fs::path base = fs::path(page).parent_path();
    // Inline markdown links: ](target). Anchors are stripped; absolute
    // URLs are the link checker's job (tools/docs/check_links.sh covers
    // both in CI); here we pin the cheap, always-on property.
    for (std::size_t pos = text.find("]("); pos != std::string::npos;
         pos = text.find("](", pos + 2)) {
      const std::size_t close = text.find(')', pos + 2);
      ASSERT_NE(close, std::string::npos) << page << ": unclosed link";
      std::string target = text.substr(pos + 2, close - pos - 2);
      if (target.find("://") != std::string::npos) continue;
      const std::size_t hash = target.find('#');
      if (hash != std::string::npos) target.resize(hash);
      if (target.empty()) continue;  // pure same-page anchor
      EXPECT_TRUE(fs::exists(base / target))
          << page << " links to missing file " << target;
    }
  }
}

}  // namespace
