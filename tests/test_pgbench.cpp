#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/spice.hpp"
#include "core/decomposition.hpp"
#include "core/input_view.hpp"
#include "core/scheduler.hpp"
#include "la/error.hpp"
#include "pgbench/pg_generator.hpp"
#include "pgbench/rc_mesh.hpp"
#include "pgbench/stiffness.hpp"
#include "solver/dc.hpp"
#include "solver/fixed_step.hpp"
#include "solver/observer.hpp"
#include "test_util.hpp"

namespace matex::pgbench {
namespace {

using circuit::MnaSystem;
using circuit::Netlist;

TEST(PowerGrid, GeneratesExpectedStructure) {
  PowerGridSpec spec;
  spec.rows = 8;
  spec.cols = 8;
  spec.layers = 2;
  spec.source_count = 10;
  spec.bump_shape_count = 3;
  spec.pads_per_side = 1;
  const Netlist n = generate_power_grid(spec);
  // 8x8 bottom layer + 4x4 top layer nodes, plus 4 pad nodes.
  EXPECT_EQ(n.node_count(), 64 + 16 + 4);
  EXPECT_EQ(n.capacitors().size(), 64u + 16u);
  EXPECT_EQ(n.current_sources().size(), 10u);
  EXPECT_EQ(n.voltage_sources().size(), 4u);
  EXPECT_TRUE(n.inductors().empty());
}

TEST(PowerGrid, PadInductanceAddsBranches) {
  PowerGridSpec spec;
  spec.rows = 4;
  spec.cols = 4;
  spec.layers = 1;
  spec.pads_per_side = 1;
  spec.pad_inductance = 1e-10;
  spec.source_count = 2;
  const Netlist n = generate_power_grid(spec);
  EXPECT_EQ(n.inductors().size(), 4u);
  const MnaSystem mna(n);
  EXPECT_EQ(mna.branch_unknowns(), 4);
  // The grid is still DC-solvable through the package.
  const auto dc = solver::dc_operating_point(mna);
  EXPECT_NEAR(mna.node_voltage(dc.x, n.find_node("matexpg_n0_0_0"), 0.0),
              spec.vdd, 1e-9);
}

TEST(PowerGrid, DeterministicForSeed) {
  PowerGridSpec spec;
  spec.rows = 6;
  spec.cols = 6;
  spec.source_count = 8;
  const Netlist a = generate_power_grid(spec);
  const Netlist b = generate_power_grid(spec);
  std::ostringstream sa, sb;
  circuit::write_spice(a, sa);
  circuit::write_spice(b, sb);
  EXPECT_EQ(sa.str(), sb.str());

  spec.seed = 99;
  const Netlist c = generate_power_grid(spec);
  std::ostringstream sc;
  circuit::write_spice(c, sc);
  EXPECT_NE(sa.str(), sc.str());
}

TEST(PowerGrid, DcSagsBelowVddUnderLoad) {
  PowerGridSpec spec;
  spec.rows = 10;
  spec.cols = 10;
  spec.source_count = 20;
  const Netlist n = generate_power_grid(spec);
  const MnaSystem mna(n);
  const auto dc = solver::dc_operating_point(mna);
  // All node voltages <= vdd (pulse baselines are zero, so DC has no
  // load current, every node sits essentially at vdd).
  double vmin = 1e9, vmax = -1e9;
  for (la::index_t i = 0; i < mna.node_unknowns(); ++i) {
    vmin = std::min(vmin, dc.x[static_cast<std::size_t>(i)]);
    vmax = std::max(vmax, dc.x[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(vmin, spec.vdd, 1e-6);
  EXPECT_NEAR(vmax, spec.vdd, 1e-6);
}

TEST(PowerGrid, BumpShapeCountBoundsGroupCount) {
  PowerGridSpec spec;
  spec.rows = 8;
  spec.cols = 8;
  spec.source_count = 40;
  spec.bump_shape_count = 5;
  const Netlist n = generate_power_grid(spec);
  const MnaSystem mna(n);
  core::DecompositionOptions dopt;
  dopt.t_end = spec.t_window;
  const auto d = core::decompose_sources(mna, dopt);
  EXPECT_LE(d.groups.size(), 5u);
  EXPECT_GE(d.groups.size(), 2u);
  std::size_t member_total = 0;
  for (const auto& g : d.groups) member_total += g.members.size();
  EXPECT_EQ(member_total, 40u);
}

TEST(PowerGrid, SpiceRoundTripPreservesStructure) {
  PowerGridSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  spec.source_count = 6;
  const Netlist n = generate_power_grid(spec);
  std::ostringstream out;
  circuit::write_spice(n, out, "pg roundtrip");
  const auto deck = circuit::read_spice_string(out.str());
  EXPECT_EQ(deck.netlist.element_count(), n.element_count());
  const MnaSystem m1(n), m2(deck.netlist);
  EXPECT_EQ(m1.dimension(), m2.dimension());
  EXPECT_NEAR(la::max_abs_diff(m1.g(), m2.g()), 0.0, 1e-12);
}

TEST(PowerGrid, InvalidSpecsThrow) {
  PowerGridSpec spec;
  spec.rows = 1;
  EXPECT_THROW(generate_power_grid(spec), InvalidArgument);
  spec = PowerGridSpec{};
  spec.layers = 0;
  EXPECT_THROW(generate_power_grid(spec), InvalidArgument);
  spec = PowerGridSpec{};
  spec.load_current_min = -1.0;
  EXPECT_THROW(generate_power_grid(spec), InvalidArgument);
}

TEST(PowerGrid, TableSpecsGrowAndScale) {
  double last_nodes = 0;
  for (int i = 1; i <= 6; ++i) {
    const auto spec = table_benchmark_spec(i);
    const double nodes = static_cast<double>(spec.rows) * spec.cols;
    if (i != 4) {
      EXPECT_GT(nodes, last_nodes) << "design " << i;
    }
    last_nodes = nodes;
  }
  const auto small = table_benchmark_spec(2, 0.25);
  const auto full = table_benchmark_spec(2, 1.0);
  EXPECT_LT(small.rows, full.rows);
  EXPECT_THROW(table_benchmark_spec(0), InvalidArgument);
  EXPECT_THROW(table_benchmark_spec(7), InvalidArgument);
  EXPECT_THROW(table_benchmark_spec(1, 0.0), InvalidArgument);
}

TEST(StiffMesh, StructureAndDeterminism) {
  StiffRcSpec spec;
  spec.rows = 6;
  spec.cols = 6;
  const Netlist a = generate_stiff_rc_mesh(spec);
  EXPECT_EQ(a.node_count(), 36);
  EXPECT_EQ(a.capacitors().size(), 36u);
  EXPECT_EQ(a.current_sources().size(), 1u);
  const Netlist b = generate_stiff_rc_mesh(spec);
  std::ostringstream sa, sb;
  circuit::write_spice(a, sa);
  circuit::write_spice(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(StiffMesh, InvalidSpecThrows) {
  StiffRcSpec spec;
  spec.rows = 1;
  EXPECT_THROW(generate_stiff_rc_mesh(spec), InvalidArgument);
  spec = StiffRcSpec{};
  spec.cap_max = 0.0;
  EXPECT_THROW(generate_stiff_rc_mesh(spec), InvalidArgument);
}

TEST(Stiffness, DiagonalSystemExact) {
  // C = I, G = diag(1, 10, 100): lambda = -1, -10, -100.
  la::TripletMatrix tc(3, 3), tg(3, 3);
  for (la::index_t i = 0; i < 3; ++i) {
    tc.add(i, i, 1.0);
    tg.add(i, i, std::pow(10.0, i));
  }
  const auto c = tc.to_csc();
  const auto g = tg.to_csc();
  const auto est = estimate_stiffness(c, g);
  EXPECT_TRUE(est.converged);
  EXPECT_NEAR(est.lambda_max_mag, 100.0, 1.0);
  EXPECT_NEAR(est.lambda_min_mag, 1.0, 0.01);
  EXPECT_NEAR(est.stiffness, 100.0, 2.0);
}

TEST(Stiffness, GrowsWithCapacitanceSpread) {
  StiffRcSpec mild;
  mild.rows = mild.cols = 5;
  mild.cap_decades = 1.0;
  StiffRcSpec harsh = mild;
  harsh.cap_decades = 6.0;

  const Netlist nm = generate_stiff_rc_mesh(mild);
  const Netlist nh = generate_stiff_rc_mesh(harsh);
  const MnaSystem mm(nm), mh(nh);
  const auto em = estimate_stiffness(mm.c(), mm.g());
  const auto eh = estimate_stiffness(mh.c(), mh.g());
  EXPECT_GT(em.stiffness, 1.0);
  EXPECT_GT(eh.stiffness, 1e3 * em.stiffness);
}

TEST(Integration, InductivePadGridMatexVsTr) {
  // The Table 2/3 analog grids carry package inductance: oscillatory
  // (complex-eigenvalue) supply modes plus singular C rows from the
  // branch currents -- the hardest configuration for the Krylov solvers.
  auto spec = table_benchmark_spec(1, 0.15);
  const Netlist n = generate_power_grid(spec);
  const MnaSystem mna(n);
  ASSERT_GT(mna.branch_unknowns(), 0);  // inductors present
  const auto dc = solver::dc_operating_point(mna);

  const double t_end = spec.t_window;
  const double h = 1e-11;
  solver::FixedStepOptions tr_opt;
  tr_opt.t_end = t_end;
  tr_opt.h = 1e-12;  // fine reference
  solver::StateRecorder ref;
  run_fixed_step(mna, dc.x, solver::StepMethod::kTrapezoidal, tr_opt,
                 ref.observer());

  core::SchedulerOptions opt;
  opt.t_end = t_end;
  opt.solver.kind = krylov::KrylovKind::kRational;
  opt.solver.gamma = 1e-10;
  opt.solver.tolerance = 1e-8;
  opt.solver.max_dim = 150;
  opt.output_times = solver::uniform_grid(0.0, t_end, h);
  solver::StateRecorder mx;
  run_distributed_matex(mna, opt, mx.observer());

  solver::ErrorStats err;
  for (std::size_t i = 0; i < mx.sample_count(); ++i)
    err.accumulate(mx.state(i), ref.state(i * 10));
  EXPECT_LT(err.max_abs, 1e-4);
  EXPECT_LT(err.mean_abs(), 1e-5);
}

TEST(Integration, InductivePadGridInvertedKindToo) {
  auto spec = table_benchmark_spec(1, 0.1);
  const Netlist n = generate_power_grid(spec);
  const MnaSystem mna(n);
  const auto dc = solver::dc_operating_point(mna);
  const double t_end = spec.t_window;

  solver::FixedStepOptions tr_opt;
  tr_opt.t_end = t_end;
  tr_opt.h = 1e-12;
  solver::StateRecorder ref;
  run_fixed_step(mna, dc.x, solver::StepMethod::kTrapezoidal, tr_opt,
                 ref.observer());

  core::MatexOptions opt;
  opt.kind = krylov::KrylovKind::kInverted;
  opt.tolerance = 1e-8;
  opt.max_dim = 200;
  core::MatexCircuitSolver matex(mna, opt, dc.g_factors);
  const core::FullInput input(mna);
  const auto grid = solver::uniform_grid(0.0, t_end, 1e-10);
  solver::StateRecorder rec;
  matex.run(dc.x, 0.0, t_end, input, grid, rec.observer());

  solver::ErrorStats err;
  for (std::size_t i = 0; i < rec.sample_count(); ++i)
    err.accumulate(rec.state(i), ref.state(i * 100));
  EXPECT_LT(err.max_abs, 1e-4);
}

TEST(Integration, GeneratedGridTransientMatexVsTr) {
  // End-to-end: synthetic PDN, distributed R-MATEX vs fixed-step TR.
  PowerGridSpec spec;
  spec.rows = 10;
  spec.cols = 10;
  spec.layers = 2;
  spec.source_count = 24;
  spec.bump_shape_count = 4;
  const Netlist n = generate_power_grid(spec);
  const MnaSystem mna(n);
  const auto dc = solver::dc_operating_point(mna);

  const double t_end = spec.t_window;
  const double h = 1e-11;  // 10 ps, the Table 3 grid
  solver::FixedStepOptions tr_opt;
  tr_opt.t_end = t_end;
  tr_opt.h = h;
  solver::StateRecorder tr;
  run_fixed_step(mna, dc.x, solver::StepMethod::kTrapezoidal, tr_opt,
                 tr.observer());

  core::SchedulerOptions opt;
  opt.t_end = t_end;
  opt.solver.kind = krylov::KrylovKind::kRational;
  opt.solver.gamma = 1e-10;
  opt.solver.tolerance = 1e-7;
  opt.solver.max_dim = 60;
  opt.output_times = solver::uniform_grid(0.0, t_end, h);
  solver::StateRecorder mx;
  const auto result = run_distributed_matex(mna, opt, mx.observer());

  EXPECT_LE(result.group_count, 4u);
  ASSERT_EQ(mx.sample_count(), tr.sample_count());
  solver::ErrorStats err;
  for (std::size_t i = 0; i < mx.sample_count(); ++i)
    err.accumulate(mx.state(i), tr.state(i));
  // TR at h=10ps carries its own discretization error; agreement at the
  // 1e-4-volt level matches the Table 3 error column.
  EXPECT_LT(err.max_abs, 5e-4);
  EXPECT_LT(err.mean_abs(), 5e-5);
}

}  // namespace
}  // namespace matex::pgbench
