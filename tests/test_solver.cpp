#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "la/error.hpp"
#include "solver/dc.hpp"
#include "solver/fixed_step.hpp"
#include "solver/observer.hpp"
#include "solver/tr_adaptive.hpp"
#include "test_util.hpp"

namespace matex::solver {
namespace {

using circuit::MnaSystem;
using circuit::Netlist;
using circuit::PulseSpec;
using circuit::Waveform;

// ----------------------------------------------------------- infrastructure

TEST(Observer, UniformGridCoversRangeInclusive) {
  const auto grid = uniform_grid(0.0, 1.0, 0.25);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_THROW(uniform_grid(1.0, 0.0, 0.1), InvalidArgument);
  EXPECT_THROW(uniform_grid(0.0, 1.0, 0.0), InvalidArgument);
}

TEST(Observer, StateRecorderKeepsAllSamples) {
  StateRecorder rec;
  std::vector<double> x{1.0, 2.0};
  rec(0.0, x);
  x[0] = 3.0;
  rec(0.5, x);
  ASSERT_EQ(rec.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(rec.state(0)[0], 1.0);  // deep copy, not aliased
  EXPECT_DOUBLE_EQ(rec.state(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(rec.times()[1], 0.5);
}

TEST(Observer, ProbeRecorderSelectsIndices) {
  ProbeRecorder rec({1, 0});
  std::vector<double> x{10.0, 20.0};
  rec(0.0, x);
  ASSERT_EQ(rec.probe_count(), 2u);
  EXPECT_DOUBLE_EQ(rec.waveform(0)[0], 20.0);
  EXPECT_DOUBLE_EQ(rec.waveform(1)[0], 10.0);
}

TEST(Observer, ProbeRecorderRejectsBadIndex) {
  ProbeRecorder rec({5});
  std::vector<double> x{1.0};
  EXPECT_THROW(rec(0.0, x), InvalidArgument);
}

TEST(Observer, ErrorStatsAccumulates) {
  ErrorStats s;
  std::vector<double> a{1.0, 2.0}, b{1.5, 1.0};
  s.accumulate(a, b);
  EXPECT_DOUBLE_EQ(s.max_abs, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_abs(), 0.75);
  EXPECT_EQ(s.count, 2u);
}

// -------------------------------------------------------------- test fixture

/// V(1) -- R(1) -- node b -- C(1) -- gnd. tau = RC = 1.
/// From x(0) = 0 with the DC input: v_b(t) = 1 - exp(-t).
struct RcFixture {
  Netlist netlist;
  std::unique_ptr<MnaSystem> mna;

  RcFixture() {
    netlist.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
    netlist.add_resistor("R1", "a", "b", 1.0);
    netlist.add_capacitor("C1", "b", "0", 1.0);
    mna = std::make_unique<MnaSystem>(netlist);
  }
};

double rc_exact(double t) { return 1.0 - std::exp(-t); }

// ----------------------------------------------------------------------- DC

TEST(Dc, OperatingPointOfDividerWithLoad) {
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(2.0));
  n.add_resistor("R1", "a", "b", 1.0);
  n.add_resistor("R2", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  const MnaSystem mna(n);
  const auto dc = dc_operating_point(mna);
  EXPECT_NEAR(dc.x[0], 1.0, 1e-12);
  EXPECT_GT(dc.seconds, 0.0);
  ASSERT_NE(dc.g_factors, nullptr);
  EXPECT_EQ(dc.g_factors->order(), 1);
}

TEST(Dc, PulseSourceEvaluatedAtStartTime) {
  Netlist n;
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 1.0;
  s.delay = 1.0;
  s.rise = 0.5;
  s.width = 1.0;
  s.fall = 0.5;
  n.add_current_source("I1", "b", "0", Waveform::pulse(s));
  n.add_resistor("R1", "b", "0", 2.0);
  const MnaSystem mna(n);
  EXPECT_NEAR(dc_operating_point(mna, 0.0).x[0], 0.0, 1e-12);
  // At t = 1.75 the pulse is at full value 1 -> v = -I*R = -2.
  EXPECT_NEAR(dc_operating_point(mna, 2.0).x[0], -2.0, 1e-12);
}

TEST(Dc, FloatingNodeThrows) {
  Netlist n;
  n.add_capacitor("C1", "a", "0", 1.0);  // no DC path to ground
  const MnaSystem mna(n);
  EXPECT_THROW(dc_operating_point(mna), NumericalError);
}

// ---------------------------------------------------------------- fixed step

TEST(FixedStep, TrMatchesAnalyticRc) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  FixedStepOptions opt;
  opt.t_end = 2.0;
  opt.h = 0.01;
  StateRecorder rec;
  const auto stats = run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal,
                                    opt, rec.observer());
  EXPECT_EQ(stats.steps, 200);
  EXPECT_EQ(stats.factorizations, 1);
  EXPECT_EQ(stats.solves, stats.steps);
  ASSERT_EQ(rec.sample_count(), 201u);
  for (std::size_t i = 0; i < rec.sample_count(); ++i)
    EXPECT_NEAR(rec.state(i)[0], rc_exact(rec.times()[i]), 1e-5)
        << "t=" << rec.times()[i];
}

TEST(FixedStep, BeMatchesAnalyticRcFirstOrder) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  FixedStepOptions opt;
  opt.t_end = 2.0;
  opt.h = 0.001;
  StateRecorder rec;
  run_fixed_step(*f.mna, x0, StepMethod::kBackwardEuler, opt,
                 rec.observer());
  for (std::size_t i = 0; i < rec.sample_count(); ++i)
    EXPECT_NEAR(rec.state(i)[0], rc_exact(rec.times()[i]), 1e-3);
}

TEST(FixedStep, InvalidOptionsThrow) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  FixedStepOptions opt;
  opt.t_end = 0.0;
  opt.h = 0.1;
  EXPECT_THROW(run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal, opt,
                              nullptr),
               InvalidArgument);
  opt.t_end = 1.0;
  opt.h = 0.0;
  EXPECT_THROW(run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal, opt,
                              nullptr),
               InvalidArgument);
  opt.h = 0.1;
  const std::vector<double> bad_x0{0.0, 0.0};
  EXPECT_THROW(run_fixed_step(*f.mna, bad_x0, StepMethod::kTrapezoidal, opt,
                              nullptr),
               InvalidArgument);
}

TEST(FixedStep, PartialFinalStepLandsOnTend) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  FixedStepOptions opt;
  opt.t_end = 0.25;
  opt.h = 0.1;  // 2 whole steps + one 0.05 step
  StateRecorder rec;
  const auto stats = run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal,
                                    opt, rec.observer());
  EXPECT_EQ(stats.steps, 3);
  EXPECT_EQ(stats.factorizations, 2);  // one extra for the partial step
  EXPECT_NEAR(rec.times().back(), 0.25, 1e-15);
}

TEST(FixedStep, TrSecondOrderConvergence) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  auto err_at = [&](double h) {
    FixedStepOptions opt;
    opt.t_end = 1.0;
    opt.h = h;
    StateRecorder rec;
    run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal, opt,
                   rec.observer());
    return std::abs(rec.states().back()[0] - rc_exact(1.0));
  };
  const double e1 = err_at(0.1);
  const double e2 = err_at(0.05);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 2.0, 0.2);
}

TEST(FixedStep, BeFirstOrderConvergence) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  auto err_at = [&](double h) {
    FixedStepOptions opt;
    opt.t_end = 1.0;
    opt.h = h;
    StateRecorder rec;
    run_fixed_step(*f.mna, x0, StepMethod::kBackwardEuler, opt,
                   rec.observer());
    return std::abs(rec.states().back()[0] - rc_exact(1.0));
  };
  const double order = std::log2(err_at(0.1) / err_at(0.05));
  EXPECT_NEAR(order, 1.0, 0.15);
}

TEST(FixedStep, ForwardEulerStableOnlyBelowStabilityLimit) {
  // tau = RC = 0.1 -> lambda = -10; FE stable iff h < 2/|lambda| = 0.2.
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "a", "b", 0.1);
  n.add_capacitor("C1", "b", "0", 1.0);
  const MnaSystem mna(n);
  const std::vector<double> x0{0.0};

  FixedStepOptions stable;
  stable.t_end = 2.0;
  stable.h = 0.05;
  StateRecorder rec_ok;
  run_fixed_step(mna, x0, StepMethod::kForwardEuler, stable,
                 rec_ok.observer());
  EXPECT_NEAR(rec_ok.states().back()[0], 1.0, 1e-2);

  FixedStepOptions unstable = stable;
  unstable.h = 0.35;
  StateRecorder rec_bad;
  run_fixed_step(mna, x0, StepMethod::kForwardEuler, unstable,
                 rec_bad.observer());
  EXPECT_GT(std::abs(rec_bad.states().back()[0]), 10.0);  // diverged
}

TEST(FixedStep, PulseDrivenRcAgreesAcrossMethods) {
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "a", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 0.5);
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 0.4;
  s.delay = 0.2;
  s.rise = 0.1;
  s.width = 0.4;
  s.fall = 0.1;
  n.add_current_source("I1", "b", "0", Waveform::pulse(s));
  const MnaSystem mna(n);
  const auto dc = dc_operating_point(mna);

  FixedStepOptions fine;
  fine.t_end = 2.0;
  fine.h = 1e-4;
  StateRecorder ref;
  run_fixed_step(mna, dc.x, StepMethod::kTrapezoidal, fine, ref.observer());

  FixedStepOptions coarse = fine;
  coarse.h = 1e-2;
  StateRecorder tr;
  run_fixed_step(mna, dc.x, StepMethod::kTrapezoidal, coarse, tr.observer());

  // Compare at the coarse sample times (every 100th fine sample).
  for (std::size_t i = 0; i < tr.sample_count(); ++i)
    EXPECT_NEAR(tr.state(i)[0], ref.state(i * 100)[0], 2e-4);
}

// ---------------------------------------------------------------- adaptive TR

TEST(AdaptiveTr, MatchesFineReferenceOnPulse) {
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "a", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 0.5);
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 0.4;
  s.delay = 0.5;
  s.rise = 0.1;
  s.width = 0.4;
  s.fall = 0.1;
  n.add_current_source("I1", "b", "0", Waveform::pulse(s));
  const MnaSystem mna(n);
  const auto dc = dc_operating_point(mna);

  FixedStepOptions fine;
  fine.t_end = 3.0;
  fine.h = 1e-4;
  StateRecorder ref;
  run_fixed_step(mna, dc.x, StepMethod::kTrapezoidal, fine, ref.observer());

  // (a) Accuracy at the solver's own accepted points: TR itself must be
  // accurate there (compare to the nearest fine-grid reference sample).
  AdaptiveTrOptions opt;
  opt.t_end = 3.0;
  opt.h_init = 1e-3;
  opt.lte_tol = 1e-6;
  StateRecorder steps_rec;
  const auto stats =
      run_adaptive_trapezoidal(mna, dc.x, opt, steps_rec.observer());
  for (std::size_t i = 0; i < steps_rec.sample_count(); ++i) {
    // Snap to the nearest fine-grid sample (<= h/2 = 5e-5 away; slope is
    // bounded by ~1 V/s so the snapping error is below the tolerance).
    const std::size_t ref_idx = static_cast<std::size_t>(
        std::llround(steps_rec.times()[i] / fine.h));
    EXPECT_NEAR(steps_rec.state(i)[0], ref.state(ref_idx)[0], 3e-4)
        << "t=" << steps_rec.times()[i];
  }
  // Adaptivity really happened: steps vary, so multiple factorizations.
  EXPECT_GT(stats.factorizations, 1);
  // And far fewer steps than the fine fixed-step run.
  EXPECT_LT(stats.steps, 3000);

  // (b) Interpolated uniform outputs land on the requested grid; the
  // linear interpolation between accepted points adds O(h^2) error, so the
  // tolerance is looser.
  AdaptiveTrOptions opt_out = opt;
  opt_out.output_times = uniform_grid(0.0, 3.0, 0.1);
  StateRecorder rec;
  run_adaptive_trapezoidal(mna, dc.x, opt_out, rec.observer());
  ASSERT_EQ(rec.sample_count(), opt_out.output_times.size());
  for (std::size_t i = 0; i < rec.sample_count(); ++i) {
    const std::size_t ref_idx = static_cast<std::size_t>(
        std::llround(rec.times()[i] / fine.h));
    EXPECT_NEAR(rec.state(i)[0], ref.state(ref_idx)[0], 3e-3)
        << "t=" << rec.times()[i];
  }
}

TEST(AdaptiveTr, GrowsStepsInQuietRegions) {
  RcFixture f;  // pure DC input: after the initial transient all is quiet
  const auto dc = dc_operating_point(*f.mna);
  AdaptiveTrOptions opt;
  opt.t_end = 10.0;
  opt.h_init = 1e-3;
  opt.lte_tol = 1e-5;
  StateRecorder rec;
  const auto stats =
      run_adaptive_trapezoidal(*f.mna, dc.x, opt, rec.observer());
  // From the DC operating point with DC input nothing happens: the
  // controller should reach h_max quickly -> very few steps.
  EXPECT_LT(stats.steps, 60);
  EXPECT_EQ(stats.rejected_steps, 0);
}

TEST(AdaptiveTr, AlignsToTransitionSpots) {
  Netlist n;
  n.add_resistor("R1", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 1.0;
  s.delay = 1.0;
  s.rise = 0.25;
  s.width = 0.5;
  s.fall = 0.25;
  n.add_current_source("I1", "b", "0", Waveform::pulse(s));
  const MnaSystem mna(n);
  const std::vector<double> x0{0.0};
  AdaptiveTrOptions opt;
  opt.t_end = 3.0;
  opt.h_init = 0.05;
  opt.lte_tol = 1e-3;
  StateRecorder rec;
  run_adaptive_trapezoidal(mna, x0, opt, rec.observer());
  // Every transition spot must appear among the accepted step times.
  for (double ts : {1.0, 1.25, 1.75, 2.0}) {
    bool found = false;
    for (double t : rec.times())
      if (std::abs(t - ts) < 1e-9) found = true;
    EXPECT_TRUE(found) << "missing transition spot " << ts;
  }
}

TEST(AdaptiveTr, AdversarialBreakpointSpacingLeavesNoSubHminSlivers) {
  // PWL breakpoints placed a fraction of h_min beyond the natural
  // stepping cadence: with h_init = h_max = 0.1 the solver lands on
  // multiples of 0.1, and the spots at k*0.1 + delta (delta < h_min)
  // used to strand sub-h_min slivers in front of every transition --
  // steps of ~delta whose 1/h blows up the shifted system. The shaving
  // guard now stretches the incoming step to land on the spot instead.
  Netlist n;
  n.add_resistor("R1", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  n.add_current_source(
      "I1", "b", "0",
      Waveform::pwl({0.30004, 0.60007, 0.85},
                    {0.0, 5e-3, 1e-3}));
  const MnaSystem mna(n);
  const std::vector<double> x0{0.0};

  AdaptiveTrOptions opt;
  opt.t_end = 1.0;
  opt.h_init = 0.1;
  opt.h_max = 0.1;
  opt.h_min = 1e-4;
  opt.lte_tol = 1e-2;
  StateRecorder rec;
  const auto stats = run_adaptive_trapezoidal(mna, x0, opt, rec.observer());
  EXPECT_LT(stats.steps, 200);

  const auto spots = mna.global_transition_spots(0.0, opt.t_end);
  ASSERT_EQ(spots.size(), 3u);
  const double t_eps = opt.t_end * 1e-12;
  for (std::size_t i = 1; i < rec.times().size(); ++i) {
    const double t_prev = rec.times()[i - 1];
    const double t = rec.times()[i];
    for (const double s : spots) {
      // No accepted step may land inside the dead zone (s - h_min, s):
      // the next step would be an unsteppable sliver.
      EXPECT_FALSE(s - t > 10.0 * t_eps && s - t < 0.999 * opt.h_min)
          << "step landed " << s - t << " before spot " << s;
      // And no step may straddle a spot (align_to_transitions).
      EXPECT_FALSE(s > t_prev + 10.0 * t_eps && s < t - 10.0 * t_eps)
          << "step " << t_prev << " -> " << t << " crossed spot " << s;
    }
  }
  // The spots themselves are still hit exactly.
  for (const double s : spots) {
    bool found = false;
    for (const double t : rec.times())
      if (std::abs(t - s) <= 10.0 * t_eps) found = true;
    EXPECT_TRUE(found) << "missing transition spot " << s;
  }
}

TEST(AdaptiveTr, ForcedBoundaryStepUnderLteRejectionTerminates) {
  // Livelock regression: with the next spot 1..2 h_min ahead, every
  // admissible step either lands in the dead zone or on the boundary.
  // An unconditional LTE rejection of the stretched step would shrink
  // h_desired, the controller would floor it back to h_min, and the
  // stretch would reproduce the identical step forever. Such forced
  // boundary steps must be accepted; the run has to terminate. An
  // impossibly tight lte_tol makes every non-exempt step reject.
  Netlist n;
  n.add_resistor("R1", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  n.add_current_source("I1", "b", "0",
                       Waveform::pwl({3.5e-3, 7.3e-3}, {1e-3, 0.0}));
  const MnaSystem mna(n);
  const std::vector<double> x0{1e-3};

  AdaptiveTrOptions opt;
  opt.t_end = 1e-2;
  opt.h_init = 1e-3;
  opt.h_min = 1e-3;
  opt.h_max = 1e-3;
  opt.lte_tol = 1e-30;
  StateRecorder rec;
  const auto stats = run_adaptive_trapezoidal(mna, x0, opt, rec.observer());
  EXPECT_LT(stats.steps, 50);
  EXPECT_NEAR(rec.times().back(), opt.t_end, 1e-12);
  // The spots were still hit exactly.
  for (const double s : {3.5e-3, 7.3e-3}) {
    bool found = false;
    for (const double t : rec.times())
      if (std::abs(t - s) <= 1e-13) found = true;
    EXPECT_TRUE(found) << "missing transition spot " << s;
  }
}

TEST(AdaptiveTr, StretchedStepsRespectHmax) {
  // The boundary stretch must not exceed the user's h_max: a spot just
  // past a whole number of h_max steps is reached by splitting the
  // remaining gap, not by one oversized step.
  Netlist n;
  n.add_resistor("R1", "b", "0", 1.0);
  n.add_capacitor("C1", "b", "0", 1.0);
  // After ten h_max steps the spot sits 1.4 h_max ahead: inside the
  // stretch window (gap - h_min < h_max) but beyond h_max, so the old
  // stretch would take one 1.4e-3 step.
  n.add_current_source("I1", "b", "0",
                       Waveform::pwl({1.14e-2, 2e-2}, {1e-3, 0.0}));
  const MnaSystem mna(n);
  const std::vector<double> x0{1e-3};

  AdaptiveTrOptions opt;
  opt.t_end = 3e-2;
  opt.h_init = 1e-3;
  opt.h_min = 5e-4;
  opt.h_max = 1e-3;
  opt.lte_tol = 1.0;  // loose: steps run at h_max
  StateRecorder rec;
  run_adaptive_trapezoidal(mna, x0, opt, rec.observer());
  for (std::size_t i = 1; i < rec.times().size(); ++i)
    EXPECT_LE(rec.times()[i] - rec.times()[i - 1], opt.h_max * 1.0001)
        << "step " << i << " exceeded h_max";
  bool found = false;
  for (const double t : rec.times())
    if (std::abs(t - 1.14e-2) <= 1e-13) found = true;
  EXPECT_TRUE(found) << "missing transition spot";
}

TEST(AdaptiveTr, HysteresisReducesFactorizations) {
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "a", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 0.5);
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 0.3;
  s.delay = 0.3;
  s.rise = 0.1;
  s.width = 0.2;
  s.fall = 0.1;
  s.period = 1.0;
  n.add_current_source("I1", "b", "0", Waveform::pulse(s));
  const MnaSystem mna(n);
  const auto dc = dc_operating_point(mna);

  AdaptiveTrOptions strict;
  strict.t_end = 5.0;
  strict.h_init = 1e-3;
  strict.lte_tol = 1e-5;
  const auto s1 = run_adaptive_trapezoidal(mna, dc.x, strict, nullptr);

  AdaptiveTrOptions relaxed = strict;
  relaxed.refactor_hysteresis = 2.0;
  const auto s2 = run_adaptive_trapezoidal(mna, dc.x, relaxed, nullptr);

  EXPECT_LT(s2.factorizations, s1.factorizations);
}

TEST(AdaptiveTr, SupernodalRefactorMatchesScalarAndIsCounted) {
  // Step-size changes refactorize C/h + G/2 along one cached analysis;
  // with the kernel pinned to kAlways vs kNever the trajectories must
  // agree sample-for-sample (the blocked kernel replays the identical
  // operation sequence) and the supernodal counter must attribute every
  // refactorization to the panels.
  Netlist n;
  n.add_voltage_source("V1", "a", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "a", "b", 1.0);
  n.add_capacitor("C1", "b", "0", 0.5);
  n.add_resistor("R2", "b", "c", 2.0);
  n.add_capacitor("C2", "c", "0", 0.01);  // stiff second pole
  PulseSpec s;
  s.v1 = 0.0;
  s.v2 = 0.3;
  s.delay = 0.3;
  s.rise = 0.1;
  s.width = 0.2;
  s.fall = 0.1;
  s.period = 1.0;
  n.add_current_source("I1", "c", "0", Waveform::pulse(s));
  const MnaSystem mna(n);
  const auto dc = dc_operating_point(mna);

  AdaptiveTrOptions blocked;
  blocked.t_end = 3.0;
  blocked.h_init = 1e-3;
  blocked.lte_tol = 1e-5;
  blocked.lu_options.supernodal = la::SupernodalMode::kAlways;
  AdaptiveTrOptions scalar = blocked;
  scalar.lu_options.supernodal = la::SupernodalMode::kNever;

  ProbeRecorder rec_b({0, 1});
  auto obs_b = rec_b.observer();
  const auto st_b = run_adaptive_trapezoidal(mna, dc.x, blocked, obs_b);
  ProbeRecorder rec_s({0, 1});
  auto obs_s = rec_s.observer();
  const auto st_s = run_adaptive_trapezoidal(mna, dc.x, scalar, obs_s);

  ASSERT_GT(st_b.refactorizations, 0);
  EXPECT_EQ(st_b.supernodal_refactorizations, st_b.refactorizations);
  EXPECT_EQ(st_s.supernodal_refactorizations, 0);
  EXPECT_EQ(st_b.steps, st_s.steps);
  ASSERT_EQ(rec_b.times().size(), rec_s.times().size());
  for (std::size_t p = 0; p < 2; ++p) {
    const auto& wb = rec_b.waveform(p);
    const auto& ws = rec_s.waveform(p);
    ASSERT_EQ(wb.size(), ws.size());
    for (std::size_t i = 0; i < wb.size(); ++i) EXPECT_EQ(wb[i], ws[i]);
  }
}

TEST(AdaptiveTr, InvalidOptionsThrow) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  AdaptiveTrOptions opt;
  opt.t_end = 1.0;
  opt.h_init = 0.0;
  EXPECT_THROW(run_adaptive_trapezoidal(*f.mna, x0, opt, nullptr),
               InvalidArgument);
  opt.h_init = 0.1;
  opt.lte_tol = 0.0;
  EXPECT_THROW(run_adaptive_trapezoidal(*f.mna, x0, opt, nullptr),
               InvalidArgument);
  opt.lte_tol = 1e-4;
  opt.output_times = {1.0, 0.5};  // unsorted
  EXPECT_THROW(run_adaptive_trapezoidal(*f.mna, x0, opt, nullptr),
               InvalidArgument);
}

class TrOrderSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrOrderSweep, GlobalErrorScalesQuadratically) {
  RcFixture f;
  const std::vector<double> x0{0.0};
  const double h = GetParam();
  FixedStepOptions opt;
  opt.t_end = 1.0;
  opt.h = h;
  StateRecorder rec;
  run_fixed_step(*f.mna, x0, StepMethod::kTrapezoidal, opt, rec.observer());
  const double err = std::abs(rec.states().back()[0] - rc_exact(1.0));
  // Known TR error constant for this problem is ~ |x'''| h^2 / 12 ~ h^2/12.
  EXPECT_LT(err, 0.2 * h * h);
}

INSTANTIATE_TEST_SUITE_P(Steps, TrOrderSweep,
                         ::testing::Values(0.2, 0.1, 0.05, 0.025, 0.0125));

}  // namespace
}  // namespace matex::solver
