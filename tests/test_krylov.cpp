#include "krylov/arnoldi.hpp"
#include "krylov/operator.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/dense_lu.hpp"
#include "la/error.hpp"
#include "la/expm.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::krylov {
namespace {

using la::CscMatrix;
using la::DenseMatrix;
using la::index_t;
using la::TripletMatrix;

/// Small RC system: G = grid Laplacian + leak, C = diagonal capacitances.
struct RcSystem {
  CscMatrix c;
  CscMatrix g;
};

RcSystem make_rc(index_t rows, index_t cols, double cap = 1.0,
                 double cap_spread = 0.0, std::uint64_t seed = 1) {
  RcSystem sys;
  sys.g = matex::testing::grid_laplacian(rows, cols, 0.1);
  matex::testing::Rng rng(seed);
  TripletMatrix tc(sys.g.rows(), sys.g.cols());
  for (index_t i = 0; i < sys.g.rows(); ++i)
    tc.add(i, i, cap * (1.0 + cap_spread * rng.uniform()));
  sys.c = tc.to_csc();
  return sys;
}

/// Dense A = -C^{-1} G for reference computations.
DenseMatrix dense_a(const RcSystem& sys) {
  const std::size_t n = static_cast<std::size_t>(sys.g.rows());
  const auto gd = sys.g.to_dense_column_major();
  const auto cd = sys.c.to_dense_column_major();
  DenseMatrix gdm(n, n, std::vector<double>(gd.begin(), gd.end()));
  DenseMatrix cdm(n, n, std::vector<double>(cd.begin(), cd.end()));
  DenseMatrix a = la::DenseLU(cdm).solve(gdm);
  return a.scaled(-1.0);
}

TEST(CircuitOperator, KindNames) {
  EXPECT_STREQ(kind_name(KrylovKind::kStandard), "MEXP");
  EXPECT_STREQ(kind_name(KrylovKind::kInverted), "I-MATEX");
  EXPECT_STREQ(kind_name(KrylovKind::kRational), "R-MATEX");
}

TEST(CircuitOperator, RationalRequiresPositiveGamma) {
  const auto sys = make_rc(2, 2);
  EXPECT_THROW(CircuitOperator(sys.c, sys.g, KrylovKind::kRational, 0.0),
               InvalidArgument);
  EXPECT_THROW(CircuitOperator(sys.c, sys.g, KrylovKind::kRational, -1.0),
               InvalidArgument);
}

TEST(CircuitOperator, DimensionMismatchThrows) {
  const auto sys = make_rc(2, 2);
  const auto g3 = matex::testing::grid_laplacian(3, 3);
  EXPECT_THROW(CircuitOperator(sys.c, g3, KrylovKind::kInverted),
               InvalidArgument);
}

TEST(CircuitOperator, StandardApplyMatchesDenseA) {
  const auto sys = make_rc(3, 3);
  const auto a = dense_a(sys);
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kStandard);
  matex::testing::Rng rng(2);
  const auto x = matex::testing::random_vector(9, rng);
  std::vector<double> y(9), yref(9);
  op.apply(x, y);
  a.multiply(x, yref);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);
}

TEST(CircuitOperator, InvertedApplyIsInverseOfStandard) {
  const auto sys = make_rc(3, 4);
  const CircuitOperator fwd(sys.c, sys.g, KrylovKind::kStandard);
  const CircuitOperator inv(sys.c, sys.g, KrylovKind::kInverted);
  matex::testing::Rng rng(3);
  const auto x = matex::testing::random_vector(12, rng);
  std::vector<double> y(12), z(12);
  fwd.apply(x, y);
  inv.apply(y, z);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(z[i], x[i], 1e-10);
}

TEST(CircuitOperator, RationalApplyMatchesShiftInvert) {
  const auto sys = make_rc(3, 3);
  const double gamma = 0.37;
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kRational, gamma);
  const auto a = dense_a(sys);
  // (I - gamma A) y = x  ->  y = op(x)
  DenseMatrix shifted = DenseMatrix::identity(9);
  shifted.add_scaled(-gamma, a);
  matex::testing::Rng rng(4);
  const auto x = matex::testing::random_vector(9, rng);
  std::vector<double> y(9);
  op.apply(x, y);
  const auto yref = la::DenseLU(shifted).solve(x);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(y[i], yref[i], 1e-11);
}

struct KindParam {
  KrylovKind kind;
  double gamma;
};

class ArnoldiKindTest : public ::testing::TestWithParam<KindParam> {};

TEST_P(ArnoldiKindTest, BasisIsOrthonormal) {
  const auto [kind, gamma] = GetParam();
  const auto sys = make_rc(4, 4, 1.0, 0.5);
  const CircuitOperator op(sys.c, sys.g, kind, gamma);
  matex::testing::Rng rng(5);
  const auto v0 = matex::testing::random_vector(16, rng);
  ArnoldiOptions opts;
  opts.max_dim = 10;
  opts.tolerance = 1e-30;  // force the full dimension
  const auto s = arnoldi(op, v0, 0.5, opts);
  ASSERT_GE(s.dim(), 10);
  for (int i = 0; i <= s.dim(); ++i)
    for (int j = 0; j <= s.dim(); ++j) {
      const double vivj = la::dot(s.basis_vector(i), s.basis_vector(j));
      EXPECT_NEAR(vivj, i == j ? 1.0 : 0.0, 1e-10)
          << "i=" << i << " j=" << j;
    }
}

TEST_P(ArnoldiKindTest, ArnoldiRelationHolds) {
  // Op * V_m = V_m H + h_{m+1,m} v_{m+1} e_m'
  const auto [kind, gamma] = GetParam();
  const auto sys = make_rc(3, 5, 1.0, 0.3);
  const std::size_t n = 15;
  const CircuitOperator op(sys.c, sys.g, kind, gamma);
  matex::testing::Rng rng(6);
  const auto v0 = matex::testing::random_vector(n, rng);
  ArnoldiOptions opts;
  opts.max_dim = 8;
  opts.tolerance = 1e-30;
  const auto s = arnoldi(op, v0, 0.5, opts);
  const int m = s.dim();
  const auto hproj = s.projected_hessenberg();
  for (int j = 0; j < m; ++j) {
    std::vector<double> lhs(n);
    op.apply(s.basis_vector(j), lhs);
    std::vector<double> rhs(n, 0.0);
    for (int i = 0; i < m; ++i)
      la::axpy(hproj(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
               s.basis_vector(i), rhs);
    if (j == m - 1)
      la::axpy(s.subdiagonal(), s.basis_vector(m), rhs);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(lhs[i], rhs[i], 1e-9) << "column " << j;
  }
}

TEST_P(ArnoldiKindTest, MatchesDenseMatrixExponential) {
  const auto [kind, gamma] = GetParam();
  const auto sys = make_rc(4, 4, 1.0, 0.4);
  const std::size_t n = 16;
  const CircuitOperator op(sys.c, sys.g, kind, gamma);
  const auto a = dense_a(sys);
  matex::testing::Rng rng(7);
  const auto v0 = matex::testing::random_vector(n, rng);
  const double h = 0.8;
  ArnoldiOptions opts;
  opts.max_dim = 16;
  opts.tolerance = 1e-12;
  const auto s = arnoldi(op, v0, h, opts);
  std::vector<double> y(n);
  s.evaluate(h, y);
  const auto yref = la::expm_apply(a, h, v0);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[i], yref[i], 1e-6 * (1.0 + std::abs(yref[i])));
}

TEST_P(ArnoldiKindTest, ZeroStartVectorIsTrivial) {
  const auto [kind, gamma] = GetParam();
  const auto sys = make_rc(3, 3);
  const CircuitOperator op(sys.c, sys.g, kind, gamma);
  const std::vector<double> v0(9, 0.0);
  const auto s = arnoldi(op, v0, 0.5);
  EXPECT_TRUE(s.trivial());
  EXPECT_TRUE(s.converged());
  std::vector<double> y(9, 99.0);
  EXPECT_DOUBLE_EQ(s.evaluate(0.5, y), 0.0);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ArnoldiKindTest,
    ::testing::Values(KindParam{KrylovKind::kStandard, 0.0},
                      KindParam{KrylovKind::kInverted, 0.0},
                      KindParam{KrylovKind::kRational, 0.5},
                      KindParam{KrylovKind::kRational, 0.05}));

TEST(Arnoldi, HappyBreakdownOnEigenvector) {
  // For a diagonal system every unit vector is an eigenvector: the
  // subspace closes after one step and evaluation is exact.
  TripletMatrix tc(4, 4), tg(4, 4);
  for (index_t i = 0; i < 4; ++i) {
    tc.add(i, i, 1.0);
    tg.add(i, i, static_cast<double>(i + 1));
  }
  const auto c = tc.to_csc();
  const auto g = tg.to_csc();
  const CircuitOperator op(c, g, KrylovKind::kInverted);
  std::vector<double> v0{0.0, 1.0, 0.0, 0.0};
  const auto s = arnoldi(op, v0, 1.0);
  EXPECT_TRUE(s.breakdown());
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.dim(), 1);
  std::vector<double> y(4);
  EXPECT_DOUBLE_EQ(s.evaluate(1.0, y), 0.0);
  EXPECT_NEAR(y[1], std::exp(-2.0), 1e-12);  // lambda = -g/c = -2
  EXPECT_NEAR(y[0], 0.0, 1e-15);
}

TEST(Arnoldi, BreakdownOnAlgebraicSubspaceDecaysToZero) {
  // Singular C (an algebraic unknown, as on vsource decks): a starting
  // vector in null(C) is annihilated by the inverted and rational
  // operators, so Arnoldi breaks down at m = 1 with a *singular*
  // projected transform H'. The corresponding eigenvalue of A is
  // -infinity; the evaluation must return the exact decayed limit 0
  // instead of throwing out of the H' inversion.
  TripletMatrix tc(2, 2), tg(2, 2);
  tc.add(0, 0, 1e-12);  // x0 dynamic, x1 algebraic (zero C row/col)
  tg.add(0, 0, 2.0);
  tg.add(0, 1, -1.0);
  tg.add(1, 0, -1.0);
  tg.add(1, 1, 2.0);
  const auto c = tc.to_csc();
  const auto g = tg.to_csc();
  const std::vector<double> v0{0.0, 1.0};  // pure null(C) direction
  for (const auto kind : {KrylovKind::kInverted, KrylovKind::kRational}) {
    const CircuitOperator op(c, g, kind, 1e-10);
    KrylovSubspace s;
    ASSERT_NO_THROW(s = arnoldi(op, v0, 1e-10)) << kind_name(kind);
    EXPECT_TRUE(s.breakdown()) << kind_name(kind);
    EXPECT_TRUE(s.converged()) << kind_name(kind);
    std::vector<double> y(2, 1.0);
    EXPECT_DOUBLE_EQ(s.evaluate(1e-10, y), 0.0) << kind_name(kind);
    EXPECT_NEAR(y[0], 0.0, 1e-12) << kind_name(kind);
    EXPECT_NEAR(y[1], 0.0, 1e-12) << kind_name(kind);
  }
}

TEST(Arnoldi, ErrorEstimateDrivesConvergence) {
  const auto sys = make_rc(5, 5, 1.0, 0.7);
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kRational, 0.3);
  matex::testing::Rng rng(8);
  const auto v0 = matex::testing::random_vector(25, rng);
  ArnoldiOptions loose, tight;
  loose.tolerance = 1e-3;
  tight.tolerance = 1e-11;
  loose.max_dim = tight.max_dim = 25;
  const auto sl = arnoldi(op, v0, 0.5, loose);
  const auto st = arnoldi(op, v0, 0.5, tight);
  EXPECT_TRUE(sl.converged());
  EXPECT_TRUE(st.converged());
  EXPECT_LE(sl.dim(), st.dim());
  EXPECT_LT(st.error_estimate(0.5), 1e-11);
}

TEST(Arnoldi, StallReportsNotConvergedOrThrows) {
  const auto sys = make_rc(6, 6, 1.0, 0.5);
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kStandard);
  matex::testing::Rng rng(9);
  const auto v0 = matex::testing::random_vector(36, rng);
  ArnoldiOptions opts;
  opts.max_dim = 2;
  opts.tolerance = 1e-14;
  const auto s = arnoldi(op, v0, 2.0, opts);
  EXPECT_FALSE(s.converged());
  opts.throw_on_stall = true;
  EXPECT_THROW(arnoldi(op, v0, 2.0, opts), NumericalError);
}

TEST(Arnoldi, ExtensionGrowsToConvergence) {
  const auto sys = make_rc(5, 4, 1.0, 0.5);
  const std::size_t n = 20;
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kRational, 0.2);
  matex::testing::Rng rng(10);
  const auto v0 = matex::testing::random_vector(n, rng);
  ArnoldiOptions small;
  small.max_dim = 2;
  small.tolerance = 1e-10;
  auto s = arnoldi(op, v0, 0.7, small);
  const int dim_before = s.dim();

  ArnoldiOptions big = small;
  big.max_dim = 20;
  EXPECT_TRUE(arnoldi_extend(s, 0.7, big));
  EXPECT_TRUE(s.converged());
  EXPECT_GE(s.dim(), dim_before);

  // The extended subspace matches the dense reference.
  std::vector<double> y(n);
  s.evaluate(0.7, y);
  const auto yref = la::expm_apply(dense_a(sys), 0.7, v0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], yref[i], 1e-7);
}

TEST(Arnoldi, ReuseAcrossStepSizes) {
  // One subspace evaluated at several h values matches dense expm: this
  // is the Krylov-reuse property of Sec. 2.4 / Alg. 2 line 11.
  const auto sys = make_rc(4, 5, 1.0, 0.6);
  const std::size_t n = 20;
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kRational, 0.5);
  const auto a = dense_a(sys);
  matex::testing::Rng rng(11);
  const auto v0 = matex::testing::random_vector(n, rng);
  ArnoldiOptions opts;
  opts.max_dim = 20;
  opts.tolerance = 1e-12;
  const auto s = arnoldi(op, v0, 1.0, opts);
  for (double h : {0.05, 0.2, 0.5, 0.8, 1.0}) {
    std::vector<double> y(n);
    s.evaluate(h, y);
    const auto yref = la::expm_apply(a, h, v0);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(y[i], yref[i], 1e-6 * (1.0 + std::abs(yref[i])))
          << "h=" << h;
  }
}

TEST(Arnoldi, RationalErrorDecreasesWithLargerStep) {
  // The Fig. 5 phenomenon: for fixed (small) m on a *stiff* system, the
  // true error of the rational Krylov approximation falls as h grows,
  // because larger steps make the small-magnitude eigenvalues -- which the
  // rational basis captures first -- increasingly dominant.
  const std::size_t n = 25;
  const auto g = matex::testing::grid_laplacian(5, 5, 0.2);
  TripletMatrix tc(25, 25);
  matex::testing::Rng rng(12);
  for (index_t i = 0; i < 25; ++i)
    tc.add(i, i, std::pow(10.0, -6.0 * rng.uniform()));  // C in [1e-6, 1]
  const auto c = tc.to_csc();
  RcSystem sys{c, g};
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kRational, 1.0);
  const auto a = dense_a(sys);
  const auto v0 = matex::testing::random_vector(n, rng);
  ArnoldiOptions opts;
  opts.max_dim = 6;  // deliberately small so the error is visible
  opts.tolerance = 1e-30;
  const auto s = arnoldi(op, v0, 1.0, opts);
  std::vector<double> errs;
  for (double h : {0.01, 0.1, 1.0}) {
    std::vector<double> y(n);
    s.evaluate(h, y);
    const auto yref = la::expm_apply(a, h, v0);
    errs.push_back(la::max_abs_diff(std::span<const double>(y),
                                    std::span<const double>(yref)));
  }
  EXPECT_GT(errs[0], errs[1]);
  EXPECT_GT(errs[1], errs[2]);
}

TEST(Arnoldi, StiffSystemStandardNeedsManyMoreVectorsThanRational) {
  // Table 1's driving phenomenon in miniature: spread capacitances create
  // stiffness; the standard basis needs a much larger m than the rational
  // basis for the same budget.
  TripletMatrix tc(36, 36);
  matex::testing::Rng rng(13);
  const auto g = matex::testing::grid_laplacian(6, 6, 0.2);
  for (index_t i = 0; i < 36; ++i)
    tc.add(i, i, std::pow(10.0, -6.0 * rng.uniform()));  // C in [1e-6, 1]
  const auto c = tc.to_csc();
  const CircuitOperator std_op(c, g, KrylovKind::kStandard);
  const CircuitOperator rat_op(c, g, KrylovKind::kRational, 0.01);
  const auto v0 = matex::testing::random_vector(36, rng);
  const double h = 0.01;
  ArnoldiOptions opts;
  opts.max_dim = 36;
  opts.tolerance = 1e-8;
  const auto s_std = arnoldi(std_op, v0, h, opts);
  const auto s_rat = arnoldi(rat_op, v0, h, opts);
  EXPECT_TRUE(s_rat.converged());
  EXPECT_LT(s_rat.dim(), s_std.dim());
}

TEST(Arnoldi, OperatorApplicationsAreCounted) {
  const auto sys = make_rc(3, 3);
  const CircuitOperator op(sys.c, sys.g, KrylovKind::kInverted);
  matex::testing::Rng rng(14);
  const auto v0 = matex::testing::random_vector(9, rng);
  ArnoldiOptions opts;
  opts.max_dim = 5;
  opts.tolerance = 1e-30;
  const auto s = arnoldi(op, v0, 0.5, opts);
  EXPECT_EQ(s.operator_applications(), s.dim());
}

}  // namespace
}  // namespace matex::krylov
