#include "la/expm.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(Expm, OfZeroMatrixIsIdentity) {
  DenseMatrix z(4, 4);
  EXPECT_LE(max_abs_diff(expm(z), DenseMatrix::identity(4)), 1e-15);
}

TEST(Expm, OfDiagonalMatrixExponentiatesDiagonal) {
  DenseMatrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = -2.0;
  d(2, 2) = 0.5;
  const auto e = expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 2), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixMatchesTruncatedSeries) {
  // N = [[0,1],[0,0]] is nilpotent: e^N = I + N exactly.
  DenseMatrix n(2, 2);
  n(0, 1) = 1.0;
  const auto e = expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-15);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-15);
}

TEST(Expm, RotationMatrixGivesSineCosine) {
  // A = [[0,-w],[w,0]] -> e^A = [[cos w, -sin w],[sin w, cos w]].
  const double w = 1.3;
  DenseMatrix a(2, 2);
  a(0, 1) = -w;
  a(1, 0) = w;
  const auto e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-13);
  EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-13);
  EXPECT_NEAR(e(1, 0), std::sin(w), 1e-13);
  EXPECT_NEAR(e(1, 1), std::cos(w), 1e-13);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
  // 2x2 with known closed form: A = [[-a, 0],[0, -b]] scaled hugely.
  DenseMatrix a(2, 2);
  a(0, 0) = -50.0;
  a(1, 1) = -80.0;
  const auto e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(-50.0), 1e-13 * std::exp(-50.0) + 1e-30);
  EXPECT_NEAR(e(1, 1), std::exp(-80.0), 1e-13 * std::exp(-80.0) + 1e-30);
}

TEST(Expm, TimeScalingOverload) {
  testing::Rng rng(11);
  const auto a = testing::random_dense(5, rng);
  EXPECT_LE(max_abs_diff(expm(a, 0.25), expm(a.scaled(0.25))), 1e-14);
}

TEST(Expm, E1ExtractsFirstColumn) {
  testing::Rng rng(12);
  const auto a = testing::random_dense(6, rng);
  const auto full = expm(a, 0.7);
  const auto c = expm_e1(a, 0.7);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(c[i], full(i, 0));
}

TEST(Expm, ApplyMatchesFullExponential) {
  testing::Rng rng(13);
  const auto a = testing::random_dense(7, rng);
  const auto x = testing::random_vector(7, rng);
  const auto y = expm_apply(a, 0.3, x);
  std::vector<double> yref(7);
  expm(a, 0.3).multiply(x, yref);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(y[i], yref[i], 1e-13);
}

class ExpmPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExpmPropertyTest, GroupProperty) {
  // e^{(s+t)A} == e^{sA} e^{tA}
  testing::Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(12);
  const auto a = testing::random_dense(n, rng);
  const double s = rng.uniform(0.1, 2.0);
  const double t = rng.uniform(0.1, 2.0);
  const auto lhs = expm(a, s + t);
  const auto rhs = expm(a, s).matmul(expm(a, t));
  EXPECT_LE(max_abs_diff(lhs, rhs), 1e-10 * lhs.norm_max() + 1e-12);
}

TEST_P(ExpmPropertyTest, InverseIsExpOfNegated) {
  testing::Rng rng(GetParam() + 500);
  const std::size_t n = 2 + rng.index(10);
  const auto a = testing::random_dense(n, rng);
  const auto prod = expm(a, 1.0).matmul(expm(a, -1.0));
  EXPECT_LE(max_abs_diff(prod, DenseMatrix::identity(n)), 1e-10);
}

TEST_P(ExpmPropertyTest, MatchesTaylorSeriesForSmallNorm) {
  testing::Rng rng(GetParam() + 900);
  const std::size_t n = 2 + rng.index(8);
  auto a = testing::random_dense(n, rng);
  a = a.scaled(0.01);  // small norm: 8-term Taylor is accurate to ~1e-16
  DenseMatrix taylor = DenseMatrix::identity(n);
  DenseMatrix term = DenseMatrix::identity(n);
  for (int k = 1; k <= 8; ++k) {
    term = term.matmul(a).scaled(1.0 / k);
    taylor.add_scaled(1.0, term);
  }
  EXPECT_LE(max_abs_diff(expm(a), taylor), 1e-13);
}

TEST_P(ExpmPropertyTest, SimilarityInvariance) {
  // expm(T^-1 A T) == T^-1 expm(A) T, exercised via diagonal T.
  testing::Rng rng(GetParam() + 1300);
  const std::size_t n = 2 + rng.index(8);
  const auto a = testing::random_dense(n, rng);
  DenseMatrix t(n, n), tinv(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(0.5, 2.0);
    t(i, i) = d;
    tinv(i, i) = 1.0 / d;
  }
  const auto lhs = expm(tinv.matmul(a).matmul(t));
  const auto rhs = tinv.matmul(expm(a)).matmul(t);
  EXPECT_LE(max_abs_diff(lhs, rhs), 1e-10 * rhs.norm_max() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpmPropertyTest,
                         ::testing::Range<std::size_t>(1, 21));

}  // namespace
}  // namespace matex::la
