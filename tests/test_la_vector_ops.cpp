#include "la/vector_ops.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(VectorOps, AxpyAccumulates) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VectorOps, AxpySizeMismatchThrows) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{1.0};
  EXPECT_THROW(axpy(1.0, x, y), InvalidArgument);
}

TEST(VectorOps, ScaleMultipliesEveryEntry) {
  std::vector<double> x{1.0, -2.0, 0.5};
  scale(-4.0, x);
  EXPECT_DOUBLE_EQ(x[0], -4.0);
  EXPECT_DOUBLE_EQ(x[1], 8.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(VectorOps, DotMatchesHandComputation) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, Norm2OfUnitVectors) {
  std::vector<double> e{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(norm2(e), 1.0);
  std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

TEST(VectorOps, Norm2HandlesHugeEntriesWithoutOverflow) {
  std::vector<double> v{1e200, 1e200};
  EXPECT_NEAR(norm2(v) / (std::sqrt(2.0) * 1e200), 1.0, 1e-14);
}

TEST(VectorOps, Norm2OfZeroVectorIsZero) {
  std::vector<double> v{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(norm2(v), 0.0);
}

TEST(VectorOps, NormInfPicksLargestMagnitude) {
  std::vector<double> v{1.0, -7.5, 3.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 7.5);
}

TEST(VectorOps, Norm1SumsMagnitudes) {
  std::vector<double> v{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(norm1(v), 6.0);
}

TEST(VectorOps, CopyAndSetZero) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{0.0, 0.0};
  copy(x, y);
  EXPECT_EQ(y, x);
  set_zero(y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(VectorOps, MaxAbsDiff) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 1.0);
}

TEST(VectorOps, LinspaceEndpointsExact) {
  const auto v = linspace(0.0, 1.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_NEAR(v[5], 0.5, 1e-15);
}

TEST(VectorOps, LinspaceRejectsSinglePoint) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), InvalidArgument);
}

class NormPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NormPropertyTest, TriangleInequalityAndScaling) {
  testing::Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(100);
  auto x = testing::random_vector(n, rng);
  auto y = testing::random_vector(n, rng);
  std::vector<double> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = x[i] + y[i];
  EXPECT_LE(norm2(sum), norm2(x) + norm2(y) + 1e-12);
  EXPECT_LE(norm_inf(sum), norm_inf(x) + norm_inf(y) + 1e-12);

  const double a = rng.uniform(-3.0, 3.0);
  std::vector<double> ax = x;
  scale(a, ax);
  EXPECT_NEAR(norm2(ax), std::abs(a) * norm2(x), 1e-10 * (1.0 + norm2(x)));
}

TEST_P(NormPropertyTest, CauchySchwarz) {
  testing::Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = 1 + rng.index(64);
  auto x = testing::random_vector(n, rng);
  auto y = testing::random_vector(n, rng);
  EXPECT_LE(std::abs(dot(x, y)), norm2(x) * norm2(y) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPropertyTest,
                         ::testing::Range<std::size_t>(1, 21));

}  // namespace
}  // namespace matex::la
