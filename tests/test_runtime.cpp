/// \file test_runtime.cpp
/// \brief Tests for the concurrent simulation runtime: thread pool
///        scheduling, factorization-cache keying/eviction, scheduler/pool
///        equivalence, and the scenario batch engine.
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "core/scheduler.hpp"
#include "la/error.hpp"
#include "la/sparse_lu.hpp"
#include "runtime/batch.hpp"
#include "runtime/factor_cache.hpp"
#include "runtime/scenario.hpp"
#include "runtime/thread_pool.hpp"
#include "solver/dc.hpp"
#include "solver/observer.hpp"
#include "test_util.hpp"

namespace matex::runtime {
namespace {

using circuit::MnaSystem;
using circuit::Netlist;
using circuit::PulseSpec;
using circuit::Waveform;
using solver::StateRecorder;
using solver::uniform_grid;

/// a's sparsity pattern with uniformly scaled values: the "same mesh,
/// different parameters" shape the symbolic cache exists for.
la::CscMatrix with_same_pattern_values(const la::CscMatrix& a, double f) {
  la::CscMatrix m = a;
  for (double& v : m.values()) v *= f;
  return m;
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(pool.await(futures[i]), i * i);
  const auto stats = pool.stats();
  EXPECT_GE(stats.tasks_executed, 64);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPool, PerTaskWallTimeAccounting) {
  ThreadPool pool(2);
  auto f = pool.submit([] {
    solver::Stopwatch sw;
    while (sw.seconds() < 0.01) {
    }
  });
  pool.await(f);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 1);
  EXPECT_GE(stats.max_task_seconds, 0.01);
  EXPECT_GE(stats.busy_seconds, stats.max_task_seconds);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // A task submits subtasks to its own pool and blocks on them; await()
  // helps with pending work, so this must finish even with one worker.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    int total = 0;
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 8; ++i)
      inner.push_back(pool.submit([i] { return i; }));
    for (auto& f : inner) total += pool.await(f);
    return total;
  });
  EXPECT_EQ(pool.await(outer), 28);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW(pool.await(f), InvalidArgument);
}

TEST(ThreadPool, WaitIdleDrainsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, WaitIdleSubmitCycleStress) {
  // Regression for the wait_idle() two-loads race: the old idle check
  // read the queued and executing counters separately, so a task popped
  // between the loads made wait_idle() return while the task still ran.
  // Tight submit/wait_idle cycles with instant tasks maximize that
  // window; with the single in-flight counter every cycle must observe
  // all of its tasks finished. Runs in the TSan leg.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  int expected = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int batch = 1 + cycle % 4;
    for (int i = 0; i < batch; ++i)
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    expected += batch;
    pool.wait_idle();
    ASSERT_EQ(done.load(), expected) << "cycle " << cycle;
  }
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

// ------------------------------------------------------------ factor cache

TEST(Fingerprint, TracksContent) {
  testing::Rng rng(7);
  const auto a = testing::random_sparse_spd_like(20, 0.2, rng);
  la::CscMatrix b = a;  // identical copy
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.values()[0] += 1e-9;  // same pattern, different value
  EXPECT_NE(fingerprint(a), fingerprint(b));
  const auto c = testing::grid_laplacian(4, 5);  // different pattern
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(FactorCache, RepeatLookupsHitAndShareFactors) {
  testing::Rng rng(1);
  const auto g = testing::random_sparse_spd_like(30, 0.15, rng);
  FactorCache cache;
  const la::SparseLuOptions opts;
  const auto first = cache.g_factors(g, opts);
  const auto second = cache.g_factors(g, opts);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.factors.get(), second.factors.get());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  // The cached factors actually solve the system.
  const auto b = testing::random_vector(30, rng);
  auto x = second.factors->solve(b);
  std::vector<double> back(30);
  g.multiply(x, back);
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(FactorCache, SymbolicAnalysisSharedAcrossSamePatternValues) {
  // A gamma sweep: C + gamma*G keeps one sparsity pattern while the
  // values change, so the second factorization must be a numeric-only
  // refill along the first one's symbolic analysis.
  testing::Rng rng(21);
  const auto c = testing::random_sparse_spd_like(40, 0.1, rng);
  const auto g = with_same_pattern_values(c, 2.0);
  FactorCache cache;
  const la::SparseLuOptions opts;
  const auto e1 = cache.operator_factors(c, g, krylov::KrylovKind::kRational,
                                         1e-10, opts);
  const auto e2 = cache.operator_factors(c, g, krylov::KrylovKind::kRational,
                                         7e-10, opts);
  EXPECT_FALSE(e1.hit);
  EXPECT_FALSE(e2.hit);  // different gamma: a distinct numeric entry ...
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.symbolic_hits, 1);  // ... sharing the symbolic analysis
  EXPECT_EQ(stats.refactor_fallbacks, 0);
  EXPECT_TRUE(e2.factors->refactored());
  EXPECT_EQ(e1.factors->symbolic().get(), e2.factors->symbolic().get());
  EXPECT_GE(cache.symbolic_size(), 1u);

  // The refactorized entry is the true LU of C + 7e-10*G.
  const auto shifted = la::add_scaled(1.0, c, 7e-10, g);
  const auto b = testing::random_vector(40, rng);
  const auto x = e2.factors->solve(b);
  std::vector<double> back(40);
  shifted.multiply(x, back);
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(FactorCache, CapacityZeroSkipsSymbolicCacheToo) {
  testing::Rng rng(22);
  const auto c = testing::random_sparse_spd_like(20, 0.2, rng);
  const auto g = with_same_pattern_values(c, 3.0);
  FactorCache cache(0);
  const la::SparseLuOptions opts;
  cache.operator_factors(c, g, krylov::KrylovKind::kRational, 1e-10, opts);
  cache.operator_factors(c, g, krylov::KrylovKind::kRational, 2e-10, opts);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.symbolic_hits, 0);
  EXPECT_EQ(cache.symbolic_size(), 0u);
}

TEST(FactorCache, KeyDiscriminatesKindGammaAndOptions) {
  testing::Rng rng(2);
  const auto g = testing::random_sparse_spd_like(24, 0.15, rng);
  const auto c = testing::random_sparse_spd_like(24, 0.15, rng);
  FactorCache cache;
  const la::SparseLuOptions opts;

  const auto r1 =
      cache.operator_factors(c, g, krylov::KrylovKind::kRational, 0.1, opts);
  const auto r2 =
      cache.operator_factors(c, g, krylov::KrylovKind::kRational, 0.2, opts);
  const auto r1_again =
      cache.operator_factors(c, g, krylov::KrylovKind::kRational, 0.1, opts);
  EXPECT_FALSE(r1.hit);
  EXPECT_FALSE(r2.hit);  // different gamma => different factorization
  EXPECT_TRUE(r1_again.hit);
  EXPECT_NE(r1.factors.get(), r2.factors.get());

  const auto std_op =
      cache.operator_factors(c, g, krylov::KrylovKind::kStandard, 0.0, opts);
  EXPECT_FALSE(std_op.hit);  // LU(C), not LU(C + gamma*G)

  la::SparseLuOptions loose = opts;
  loose.pivot_tol = 0.5;
  const auto g_strict = cache.g_factors(g, opts);
  const auto g_loose = cache.g_factors(g, loose);
  EXPECT_FALSE(g_strict.hit);
  EXPECT_FALSE(g_loose.hit);  // different pivoting => different entry
}

TEST(FactorCache, InvertedOperatorSharesPlainGFactors) {
  // I-MATEX's Krylov operator *is* LU(G): the cache must give it the same
  // entry as the DC/particular-solution factorization.
  testing::Rng rng(3);
  const auto g = testing::random_sparse_spd_like(24, 0.15, rng);
  const auto c = testing::random_sparse_spd_like(24, 0.15, rng);
  FactorCache cache;
  const la::SparseLuOptions opts;
  const auto plain = cache.g_factors(g, opts);
  const auto op =
      cache.operator_factors(c, g, krylov::KrylovKind::kInverted, 0.0, opts);
  EXPECT_TRUE(op.hit);
  EXPECT_EQ(plain.factors.get(), op.factors.get());
}

TEST(FactorCache, LruEviction) {
  testing::Rng rng(4);
  std::vector<la::CscMatrix> mats;
  for (int i = 0; i < 3; ++i)
    mats.push_back(testing::random_sparse_spd_like(16, 0.2, rng));
  FactorCache cache(2);
  const la::SparseLuOptions opts;
  cache.g_factors(mats[0], opts);
  cache.g_factors(mats[1], opts);
  EXPECT_EQ(cache.size(), 2u);
  cache.g_factors(mats[0], opts);  // touch 0: 1 becomes LRU
  cache.g_factors(mats[2], opts);  // evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.g_factors(mats[0], opts).hit);   // still resident
  EXPECT_FALSE(cache.g_factors(mats[1], opts).hit);  // was evicted
}

TEST(FactorCache, CapacityZeroDisablesCaching) {
  testing::Rng rng(5);
  const auto g = testing::random_sparse_spd_like(16, 0.2, rng);
  FactorCache cache(0);
  const la::SparseLuOptions opts;
  EXPECT_FALSE(cache.g_factors(g, opts).hit);
  EXPECT_FALSE(cache.g_factors(g, opts).hit);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FactorCache, ConcurrentRefactorFallbackProducesValidFactors) {
  // Same-pattern matrices whose values invalidate the frozen pivot
  // sequence: the first (diagonally dominant) matrix freezes diagonal
  // pivots; the others have tiny diagonals, so a numeric-only refill
  // violates refactor_pivot_tol and must fall back to full pivoting --
  // here driven through the cache from many threads at once, the way a
  // batch campaign hits it.
  const la::index_t n = 24;
  const auto build = [n](double diag) {
    la::TripletMatrix t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
      t.add(i, i, diag);
      if (i + 1 < n) {
        t.add(i, i + 1, 1.0);
        t.add(i + 1, i, 1.0);
      }
    }
    return t.to_csc();
  };
  const auto dominant = build(4.0);
  const auto weak = build(1e-9);

  FactorCache cache;
  const la::SparseLuOptions opts;
  // Establish the symbolic analysis with diagonal pivots.
  EXPECT_FALSE(cache.g_factors(dominant, opts).hit);

  ThreadPool pool(4);
  std::vector<std::future<std::shared_ptr<la::SparseLU>>> futures;
  for (int rep = 0; rep < 16; ++rep)
    futures.push_back(
        pool.submit([&] { return cache.g_factors(weak, opts).factors; }));
  std::vector<std::shared_ptr<la::SparseLU>> factors;
  for (auto& f : futures) factors.push_back(pool.await(f));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);  // dominant + weak: one leader each
  EXPECT_EQ(stats.hits, 15);   // everyone else waited on the leader
  // The weak matrix found dominant's cached pattern but had to repivot:
  // that counts as a fallback, not as a symbolic (refill) hit.
  EXPECT_EQ(stats.symbolic_hits, 0);
  EXPECT_EQ(stats.refactor_fallbacks, 1);
  for (const auto& f : factors) {
    EXPECT_EQ(f.get(), factors.front().get());  // one shared factorization
    EXPECT_FALSE(f->refactored());              // produced by the fallback
  }

  // The fallback factors actually solve the weak system.
  testing::Rng rng(9);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto x = factors.front()->solve(b);
  std::vector<double> back(static_cast<std::size_t>(n));
  weak.multiply(x, back);
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_NEAR(back[i], b[i], 1e-6);
}

TEST(FactorCache, ConcurrentRequestersFactorizeOnce) {
  testing::Rng rng(6);
  const auto g = testing::random_sparse_spd_like(60, 0.1, rng);
  FactorCache cache;
  const la::SparseLuOptions opts;
  ThreadPool pool(4);
  std::vector<std::future<la::SparseLU*>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit(
        [&]() { return cache.g_factors(g, opts).factors.get(); }));
  std::set<const la::SparseLU*> distinct;
  for (auto& f : futures) distinct.insert(pool.await(f));
  EXPECT_EQ(distinct.size(), 1u);  // one factorization, shared by all
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 15);
}

// ------------------------------------------------- scheduler on the runtime

PulseSpec bump(double delay, double rise, double width, double fall,
               double v2) {
  PulseSpec s;
  s.v2 = v2;
  s.delay = delay;
  s.rise = rise;
  s.width = width;
  s.fall = fall;
  return s;
}

/// Small PDN with three distinct bump shapes (= three slave nodes).
Netlist make_pdn() {
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n.add_resistor("Rp", "p", "m00", 0.2);
  const char* nodes[] = {"m00", "m01", "m10", "m11"};
  n.add_resistor("R1", "m00", "m01", 0.5);
  n.add_resistor("R2", "m10", "m11", 0.5);
  n.add_resistor("R3", "m00", "m10", 0.5);
  n.add_resistor("R4", "m01", "m11", 0.5);
  for (const char* node : nodes)
    n.add_capacitor(std::string("C") + node, node, "0", 0.3);
  n.add_current_source("I1", "m01", "0",
                       Waveform::pulse(bump(0.3, 0.1, 0.2, 0.1, 0.2)));
  n.add_current_source("I2", "m10", "0",
                       Waveform::pulse(bump(0.9, 0.05, 0.3, 0.15, 0.1)));
  n.add_current_source("I3", "m11", "0",
                       Waveform::pulse(bump(0.5, 0.2, 0.1, 0.2, 0.15)));
  return n;
}

core::SchedulerOptions pdn_options() {
  core::SchedulerOptions opt;
  opt.t_end = 2.0;
  opt.solver.gamma = 0.05;
  opt.solver.tolerance = 1e-10;
  opt.output_times = uniform_grid(0.0, 2.0, 0.25);
  return opt;
}

TEST(SchedulerRuntime, SharedPoolMatchesInlineBitwise) {
  const Netlist n = make_pdn();
  const MnaSystem mna(n);
  auto opt = pdn_options();

  StateRecorder inline_rec;
  const auto inline_res =
      core::run_distributed_matex(mna, opt, inline_rec.observer());
  EXPECT_EQ(inline_res.workers_used, 1);

  ThreadPool pool(3);
  opt.pool = &pool;
  StateRecorder pool_rec;
  const auto pool_res =
      core::run_distributed_matex(mna, opt, pool_rec.observer());
  EXPECT_EQ(pool_res.workers_used, 3);
  EXPECT_EQ(pool_res.group_count, inline_res.group_count);

  ASSERT_EQ(inline_rec.sample_count(), pool_rec.sample_count());
  for (std::size_t i = 0; i < inline_rec.sample_count(); ++i)
    for (std::size_t j = 0; j < inline_rec.state(i).size(); ++j)
      EXPECT_EQ(inline_rec.state(i)[j], pool_rec.state(i)[j]);
}

TEST(SchedulerRuntime, FactorCacheKeepsResultsAndCutsFactorizations) {
  const Netlist n = make_pdn();
  const MnaSystem mna(n);
  auto opt = pdn_options();

  StateRecorder plain;
  const auto res_plain =
      core::run_distributed_matex(mna, opt, plain.observer());

  FactorCache cache;
  opt.factor_cache = &cache;
  StateRecorder cached;
  const auto res_cached =
      core::run_distributed_matex(mna, opt, cached.observer());

  // Same answer, bit for bit: a cached factorization is the same
  // factorization a node would have computed.
  ASSERT_EQ(plain.sample_count(), cached.sample_count());
  for (std::size_t i = 0; i < plain.sample_count(); ++i)
    for (std::size_t j = 0; j < plain.state(i).size(); ++j)
      EXPECT_EQ(plain.state(i)[j], cached.state(i)[j]);

  // 3 nodes x (operator + shared G) without cache; with the cache the
  // whole run pays for LU(G) (DC) and LU(C+gamma*G) once.
  EXPECT_GT(res_cached.factor_cache_hits, 0);
  EXPECT_LT(res_cached.aggregate.factorizations,
            res_plain.aggregate.factorizations);
  EXPECT_EQ(cache.stats().misses, 2);  // G and C+gamma*G

  // A second identical run is fully warm.
  const auto res_warm = core::run_distributed_matex(mna, opt, nullptr);
  EXPECT_EQ(res_warm.aggregate.factorizations, 0);
}

TEST(SchedulerRuntime, CacheWithoutSharedGFactors) {
  // share_g_factors=false normally makes every node refactorize G; the
  // cache absorbs those into one factorization as well.
  const Netlist n = make_pdn();
  const MnaSystem mna(n);
  auto opt = pdn_options();
  opt.share_g_factors = false;
  FactorCache cache;
  opt.factor_cache = &cache;
  const auto res = core::run_distributed_matex(mna, opt, nullptr);
  EXPECT_EQ(res.group_count, 3u);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_GE(res.factor_cache_hits, 3);  // every node hit for G at least
}

// -------------------------------------------------------------- scenarios

TEST(Scenario, ExpandCampaignCrossProduct) {
  CampaignSweep sweep;
  sweep.deck_indices = {0, 1};
  sweep.methods = {krylov::KrylovKind::kRational,
                   krylov::KrylovKind::kInverted};
  sweep.gammas = {1e-10, 2e-10};
  sweep.tolerances = {1e-6, 1e-7};
  sweep.vdd_scales = {1.0, 0.9};
  const auto scenarios = expand_campaign(sweep, {"a", "b"});
  // Per deck: R-MATEX 2 gammas x 2 tols x 2 vdd = 8, I-MATEX (gamma
  // ignored) 2 x 2 = 4.
  EXPECT_EQ(scenarios.size(), 24u);
  std::set<std::string> names;
  for (const auto& s : scenarios) names.insert(s.name);
  EXPECT_EQ(names.size(), scenarios.size());  // all distinct
  EXPECT_EQ(scenarios[0].scheduler.solver.kind,
            krylov::KrylovKind::kRational);
}

TEST(Scenario, ScaleSuppliesScalesOnlyVoltageSources) {
  Netlist n = make_pdn();
  const Netlist scaled = scale_supplies(n, 0.5);
  ASSERT_EQ(scaled.voltage_sources().size(), 1u);
  EXPECT_DOUBLE_EQ(scaled.voltage_sources()[0].waveform.value(0.0), 0.5);
  // Loads untouched.
  ASSERT_EQ(scaled.current_sources().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto a = n.current_sources()[i].waveform.pulse_spec();
    const auto b = scaled.current_sources()[i].waveform.pulse_spec();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b);
  }
  // Same matrices => same fingerprints => shared factorizations.
  const MnaSystem m1(n), m2(scaled);
  EXPECT_EQ(fingerprint(m1.g()), fingerprint(m2.g()));
  EXPECT_EQ(fingerprint(m1.c()), fingerprint(m2.c()));
}

TEST(Scenario, ScaleSuppliesHandlesPwlAndSin) {
  Netlist n;
  n.add_resistor("R1", "a", "0", 1.0);
  n.add_voltage_source("Vp", "a", "0",
                       Waveform::pwl({0.0, 1.0, 2.0}, {1.0, 2.0, 0.5}));
  circuit::SinSpec sin;
  sin.offset = 1.0;
  sin.amplitude = 0.25;
  sin.frequency = 3.0;
  n.add_voltage_source("Vs", "b", "0", Waveform::sin(sin));
  n.add_resistor("R2", "b", "0", 1.0);
  const Netlist scaled = scale_supplies(n, 2.0);
  EXPECT_DOUBLE_EQ(scaled.voltage_sources()[0].waveform.value(1.0), 4.0);
  EXPECT_DOUBLE_EQ(scaled.voltage_sources()[0].waveform.value(1.5), 2.5);
  const auto s = scaled.voltage_sources()[1].waveform.sin_spec();
  ASSERT_TRUE(s);
  EXPECT_DOUBLE_EQ(s->offset, 2.0);
  EXPECT_DOUBLE_EQ(s->amplitude, 0.5);
}

// ------------------------------------------------------------ batch engine

TEST(BatchEngine, CampaignMatchesDirectRunsAndStreams) {
  BatchOptions bopt;
  bopt.threads = 2;
  BatchEngine engine(bopt);
  engine.add_deck("pdn", make_pdn());

  CampaignSweep sweep;
  sweep.methods = {krylov::KrylovKind::kRational,
                   krylov::KrylovKind::kInverted};
  sweep.gammas = {0.05, 0.1};
  sweep.tolerances = {1e-8, 1e-10};
  sweep.base = pdn_options();
  sweep.probes = {0, 1};
  const auto scenarios = engine.expand(sweep);
  ASSERT_EQ(scenarios.size(), 6u);  // 2x2 rational + 2 inverted

  std::vector<std::string> streamed;
  const auto report = engine.run(
      scenarios, [&](const ScenarioResult& r) { streamed.push_back(r.name); });

  EXPECT_EQ(report.failures, 0);
  EXPECT_EQ(streamed.size(), scenarios.size());
  EXPECT_GE(report.cache_hit_rate(), 0.5);
  ASSERT_EQ(report.results.size(), scenarios.size());

  const Netlist n = make_pdn();
  const MnaSystem mna(n);
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const auto& res = report.results[si];
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.name, scenarios[si].name);
    EXPECT_EQ(res.scenario_index, si);
    EXPECT_EQ(res.distributed.group_count, 3u);

    // Each scenario agrees bit for bit with a direct uncached run.
    StateRecorder direct;
    core::run_distributed_matex(mna, scenarios[si].scheduler,
                                direct.observer());
    ASSERT_EQ(res.times.size(), direct.sample_count());
    ASSERT_EQ(res.probe_waveforms.size(), 2u);
    for (std::size_t i = 0; i < direct.sample_count(); ++i) {
      EXPECT_EQ(res.probe_waveforms[0][i], direct.state(i)[0]);
      EXPECT_EQ(res.probe_waveforms[1][i], direct.state(i)[1]);
    }
  }
}

TEST(BatchEngine, PrewarmWarmsSymbolicCacheBeforeFanOut) {
  // ROADMAP item: pre-warm the symbolic cache from deck patterns before
  // scenario fan-out. On a wide gamma sweep the shared symbolic analysis
  // and all operator factorizations must exist by the time the *first*
  // scenario completes, and the fan-out itself must add no misses.
  BatchOptions bopt;
  bopt.threads = 2;
  BatchEngine engine(bopt);
  engine.add_deck("pdn", make_pdn());

  CampaignSweep sweep;
  sweep.methods = {krylov::KrylovKind::kRational};
  sweep.gammas = {0.05, 0.1, 0.2};
  sweep.base = pdn_options();
  const auto scenarios = engine.expand(sweep);
  ASSERT_EQ(scenarios.size(), 3u);

  FactorCacheStats at_first;
  bool first = true;
  const auto report = engine.run(scenarios, [&](const ScenarioResult&) {
    if (first) {
      at_first = engine.factor_cache().stats();
      first = false;
    }
  });
  EXPECT_EQ(report.failures, 0);

  // By the first streamed result the gamma sweep's operator
  // factorizations already share one symbolic analysis (two of the three
  // gammas refilled numerically along the leader's pattern) ...
  EXPECT_GE(at_first.symbolic_hits, 2);
  EXPECT_GE(at_first.misses, 4);  // LU(G) + three gamma operators
  // ... and the campaign itself ran entirely on cache hits.
  EXPECT_EQ(engine.factor_cache().stats().misses, at_first.misses);
  EXPECT_EQ(engine.factor_cache().stats().symbolic_hits,
            at_first.symbolic_hits);
}

TEST(BatchEngine, PrewarmCanBeDisabled) {
  BatchOptions bopt;
  bopt.prewarm = false;
  BatchEngine engine(bopt);
  engine.add_deck("pdn", make_pdn());
  ScenarioSpec spec;
  spec.name = "plain";
  spec.scheduler = pdn_options();
  const auto report = engine.run(std::vector<ScenarioSpec>{spec});
  EXPECT_EQ(report.failures, 0);
  EXPECT_EQ(engine.factor_cache().stats().misses, 2);  // G, C+gamma*G
}

TEST(BatchEngine, VddScaleScalesDcResponse) {
  // A deck whose only sources are DC supplies: the whole response is the
  // operating point, so a Vdd corner scales it exactly.
  Netlist n;
  n.add_voltage_source("Vdd", "p", "0", Waveform::dc(1.0));
  n.add_resistor("R1", "p", "a", 1.0);
  n.add_resistor("R2", "a", "0", 1.0);
  n.add_capacitor("C1", "a", "0", 1.0);

  BatchEngine engine{BatchOptions{}};
  engine.add_deck("dc", std::move(n));

  ScenarioSpec nominal;
  nominal.name = "nominal";
  nominal.scheduler.t_end = 1.0;
  nominal.scheduler.output_times = uniform_grid(0.0, 1.0, 0.5);
  nominal.probes = {0};
  ScenarioSpec corner = nominal;
  corner.name = "corner";
  corner.vdd_scale = 0.5;

  const std::vector<ScenarioSpec> scenarios = {nominal, corner};
  const auto report = engine.run(scenarios);
  ASSERT_EQ(report.failures, 0);
  ASSERT_EQ(report.results[0].probe_waveforms.size(), 1u);
  for (std::size_t i = 0; i < report.results[0].times.size(); ++i)
    EXPECT_NEAR(report.results[1].probe_waveforms[0][i],
                0.5 * report.results[0].probe_waveforms[0][i], 1e-12);
}

TEST(BatchEngine, FailedScenarioIsReportedNotThrown) {
  BatchEngine engine{BatchOptions{}};
  engine.add_deck("pdn", make_pdn());
  ScenarioSpec good;
  good.name = "good";
  good.scheduler = pdn_options();
  ScenarioSpec bad = good;
  bad.name = "bad";
  bad.scheduler.t_end = -1.0;  // invalid window
  const std::vector<ScenarioSpec> scenarios = {bad, good};
  const auto report = engine.run(scenarios);
  EXPECT_EQ(report.failures, 1);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_FALSE(report.results[0].error.empty());
  EXPECT_TRUE(report.results[1].ok);
}

TEST(BatchEngine, DeckIndexOutOfRangeFailsScenario) {
  BatchEngine engine{BatchOptions{}};
  engine.add_deck("pdn", make_pdn());
  ScenarioSpec spec;
  spec.name = "missing-deck";
  spec.deck_index = 7;
  spec.scheduler = pdn_options();
  const auto report = engine.run(std::vector<ScenarioSpec>{spec});
  EXPECT_EQ(report.failures, 1);
  EXPECT_FALSE(report.results[0].ok);
}

}  // namespace
}  // namespace matex::runtime
