#include "la/ordering.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "la/sparse_lu.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(Permutation, InvertRoundTrip) {
  const std::vector<index_t> p{2, 0, 3, 1};
  const auto inv = invert_permutation(p);
  EXPECT_EQ(inv[2], 0);
  EXPECT_EQ(inv[0], 1);
  EXPECT_EQ(inv[3], 2);
  EXPECT_EQ(inv[1], 3);
  const auto back = invert_permutation(inv);
  EXPECT_EQ(back, p);
}

TEST(Permutation, InvalidPermutationRejected) {
  const std::vector<index_t> dup{0, 0, 1};
  EXPECT_FALSE(is_permutation(dup));
  EXPECT_THROW(invert_permutation(dup), InvalidArgument);
  const std::vector<index_t> range{0, 5, 1};
  EXPECT_FALSE(is_permutation(range));
}

TEST(Ordering, NaturalIsIdentity) {
  const auto g = testing::grid_laplacian(3, 3);
  const auto p = compute_ordering(g, Ordering::kNatural);
  for (index_t i = 0; i < 9; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(Ordering, RcmIsAPermutation) {
  const auto g = testing::grid_laplacian(7, 11);
  const auto p = compute_ordering(g, Ordering::kRcm);
  EXPECT_TRUE(is_permutation(p));
}

TEST(Ordering, MinDegreeIsAPermutation) {
  const auto g = testing::grid_laplacian(9, 8);
  const auto p = compute_ordering(g, Ordering::kMinDegree);
  EXPECT_TRUE(is_permutation(p));
}

TEST(Ordering, HandlesDisconnectedGraphs) {
  // Two disjoint chains: block-diagonal Laplacians.
  TripletMatrix t(6, 6);
  auto chain = [&](index_t a, index_t b) {
    t.add(a, a, 1.0);
    t.add(b, b, 1.0);
    t.add(a, b, -1.0);
    t.add(b, a, -1.0);
  };
  chain(0, 1);
  chain(1, 2);
  chain(3, 4);
  chain(4, 5);
  const auto a = t.to_csc();
  EXPECT_TRUE(is_permutation(compute_ordering(a, Ordering::kRcm)));
  EXPECT_TRUE(is_permutation(compute_ordering(a, Ordering::kMinDegree)));
}

TEST(Ordering, HandlesIsolatedVertices) {
  TripletMatrix t(4, 4);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1.0);
  const auto a = t.to_csc();
  EXPECT_TRUE(is_permutation(compute_ordering(a, Ordering::kRcm)));
  EXPECT_TRUE(is_permutation(compute_ordering(a, Ordering::kMinDegree)));
}

TEST(Ordering, RcmReducesGridBandwidth) {
  // A long thin grid numbered row-major has bandwidth = cols; RCM should
  // renumber to bandwidth ~ rows (the short dimension).
  const index_t rows = 4, cols = 40;
  const auto g = testing::grid_laplacian(rows, cols);
  const auto p = compute_ordering(g, Ordering::kRcm);
  const auto pinv = invert_permutation(p);
  index_t bw = 0;
  for (index_t j = 0; j < g.cols(); ++j)
    for (index_t k = g.col_ptr()[j]; k < g.col_ptr()[j + 1]; ++k) {
      const index_t i = g.row_idx()[k];
      bw = std::max(bw, std::abs(pinv[static_cast<std::size_t>(i)] -
                                 pinv[static_cast<std::size_t>(j)]));
    }
  EXPECT_LE(bw, 3 * rows);  // natural row-major numbering would give ~cols
}

TEST(Ordering, FillReductionOnGrid) {
  // Both RCM and min-degree must beat natural ordering on a 2D grid.
  const auto g = testing::grid_laplacian(20, 20);
  const auto nnz_of = [&](Ordering o) {
    SparseLuOptions opt;
    opt.ordering = o;
    const SparseLU lu(g, opt);
    return lu.nnz_l() + lu.nnz_u();
  };
  const auto natural = nnz_of(Ordering::kNatural);
  const auto rcm = nnz_of(Ordering::kRcm);
  const auto md = nnz_of(Ordering::kMinDegree);
  EXPECT_LT(rcm, natural);
  EXPECT_LT(md, natural);
}

TEST(EliminationTree, TridiagonalChainUnderNaturalOrderIsAChain) {
  const index_t n = 6;
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  const auto parent = elimination_tree(t.to_csc(), order);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_EQ(parent[static_cast<std::size_t>(i)], i + 1);
  EXPECT_EQ(parent.back(), -1);
  // A chain is already postordered: the relabeling is the identity.
  const auto post = tree_postorder(parent);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(post[static_cast<std::size_t>(i)], i);
}

TEST(EliminationTree, ArrowheadMatrixHasAStarTree) {
  // Arrowhead: every node couples only to the last one -> parent[i] = n-1
  // for all i (no fill paths between the leaves).
  const index_t n = 5;
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i) t.add(i, i, 4.0);
  for (index_t i = 0; i + 1 < n; ++i) {
    t.add(i, n - 1, 1.0);
    t.add(n - 1, i, 1.0);
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  const auto parent = elimination_tree(t.to_csc(), order);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_EQ(parent[static_cast<std::size_t>(i)], n - 1);
  EXPECT_EQ(parent.back(), -1);
}

TEST(EliminationTree, PostorderIsAValidForestPostorder) {
  testing::Rng rng(55);
  const auto a = testing::random_sparse_spd_like(50, 0.1, rng);
  const auto order = compute_ordering(a, Ordering::kMinDegree);
  const auto parent = elimination_tree(a, order);
  const auto post = tree_postorder(parent);
  EXPECT_TRUE(is_permutation(post));
  // Children precede parents: position of parent(v) > position of v.
  std::vector<index_t> pos(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    pos[static_cast<std::size_t>(post[k])] = static_cast<index_t>(k);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] >= 0) {
      EXPECT_GT(pos[static_cast<std::size_t>(parent[v])], pos[v]);
    }
  }
}

TEST(EliminationTree, PostorderPreservesFactorizationFill) {
  // The fill-preservation property the supernodal pipeline rests on:
  // SparseLU postorders internally, so its fill must match a symbolic
  // count of the un-postordered elimination -- checked here indirectly
  // by comparing against the natural-order fill of a matrix that is its
  // own postorder (the chain), and structurally on a grid by the
  // factorization staying at the min-degree fill level seen before the
  // postorder landed (6.6x on this grid; a broken postorder explodes it
  // by an order of magnitude).
  const auto g = testing::grid_laplacian(12, 13);
  const SparseLU lu(g);
  EXPECT_LT(lu.fill_ratio(), 8.0);
}

class OrderingPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Ordering>> {};

TEST_P(OrderingPropertyTest, AlwaysReturnsValidPermutation) {
  const auto [seed, method] = GetParam();
  testing::Rng rng(seed);
  const index_t n = static_cast<index_t>(4 + rng.index(60));
  const auto a = testing::random_sparse_spd_like(n, 0.15, rng);
  const auto p = compute_ordering(a, method);
  EXPECT_EQ(p.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(is_permutation(p));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMethods, OrderingPropertyTest,
    ::testing::Combine(::testing::Range<std::size_t>(1, 11),
                       ::testing::Values(Ordering::kNatural, Ordering::kRcm,
                                         Ordering::kMinDegree)));

}  // namespace
}  // namespace matex::la
