/// \file test_verify_oracle.cpp
/// \brief The analytic oracle library: closed-form RC agreement with the
///        dense matrix-exponential reference, and every solver checked
///        against both on oracle-sized circuits.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "core/input_view.hpp"
#include "core/matex_solver.hpp"
#include "la/error.hpp"
#include "solver/dc.hpp"
#include "solver/fixed_step.hpp"
#include "solver/observer.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace matex::verify {
namespace {

using circuit::MnaSystem;
using solver::uniform_grid;

SinglePoleRc rc_spec() {
  SinglePoleRc rc;
  rc.r = 0.5;
  rc.c = 2e-12;  // tau = 1 ps
  rc.vdd = 1.8;
  rc.load.v2 = 5e-3;
  rc.load.delay = 2e-10;
  rc.load.rise = 1e-10;
  rc.load.width = 3e-10;
  rc.load.fall = 1e-10;
  return rc;
}

TEST(Oracle, SinglePoleClosedFormStartsAtDcAndRecovers) {
  const auto rc = rc_spec();
  // Before the pulse: the DC operating point (no load current).
  EXPECT_DOUBLE_EQ(single_pole_rc_voltage(rc, 0.0), rc.vdd);
  EXPECT_DOUBLE_EQ(single_pole_rc_voltage(rc, 1e-10), rc.vdd);
  // Mid-pulse (plateau, many tau after the edge): v = vdd - R * I.
  const double plateau = single_pole_rc_voltage(rc, 5e-10);
  EXPECT_NEAR(plateau, rc.vdd - rc.r * rc.load.v2, 1e-12);
  // Long after the pulse: back to vdd.
  EXPECT_NEAR(single_pole_rc_voltage(rc, 5e-9), rc.vdd, 1e-12);
}

TEST(Oracle, DenseReferenceMatchesClosedFormToMachinePrecision) {
  // Two independent oracles -- scalar closed form and dense expm on the
  // assembled MNA -- must agree to rounding error. This is the strongest
  // internal consistency check the oracle library has.
  const auto rc = rc_spec();
  const auto netlist = single_pole_rc_netlist(rc);
  const MnaSystem mna(netlist);
  ASSERT_EQ(mna.dimension(), 1);
  const DenseReference ref(mna);
  const auto times = uniform_grid(0.0, 2e-11 * 80, 2e-11);
  const la::index_t probe = mna.unknown_index(netlist.find_node("n1"));
  const auto table = ref.table(std::vector<la::index_t>{probe}, {"n1"},
                               times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(table.columns[0][i], single_pole_rc_voltage(rc, times[i]),
                1e-12);
}

TEST(Oracle, AllMethodsMatchClosedFormOnSinglePole) {
  const auto rc = rc_spec();
  const auto netlist = single_pole_rc_netlist(rc);
  const MnaSystem mna(netlist);
  // t_end as an exact multiple of the output step, so uniform_grid and
  // the fixed-step observer cadence agree on the sample count.
  const double t_end = 2e-11 * 80;
  const auto times = uniform_grid(0.0, t_end, 2e-11);
  const la::index_t probe = mna.unknown_index(netlist.find_node("n1"));
  const auto dc = solver::dc_operating_point(mna);

  const auto check = [&](const char* what, const std::vector<double>& wave,
                         double tol) {
    ASSERT_EQ(wave.size(), times.size()) << what;
    for (std::size_t i = 0; i < times.size(); ++i)
      EXPECT_NEAR(wave[i], single_pole_rc_voltage(rc, times[i]), tol)
          << what << " at t = " << times[i];
  };

  for (const auto kind :
       {krylov::KrylovKind::kRational, krylov::KrylovKind::kInverted}) {
    core::MatexOptions opt;
    opt.kind = kind;
    opt.gamma = 2e-10;
    opt.tolerance = 1e-10;
    core::MatexCircuitSolver matex(mna, opt, dc.g_factors);
    solver::ProbeRecorder rec({probe});
    auto obs = rec.observer();
    const core::FullInput input(mna);
    matex.run(dc.x, 0.0, t_end, input, times, obs);
    // MATEX is exact per PWL segment up to the Krylov budget.
    check(krylov::kind_name(kind), rec.waveform(0), 1e-8);
  }
  {
    solver::FixedStepOptions opt;
    opt.t_end = t_end;
    opt.h = 2e-12;  // well under tau: TR error O(h^2)
    solver::ProbeRecorder rec({probe});
    auto obs = rec.observer();
    run_fixed_step(mna, dc.x, solver::StepMethod::kTrapezoidal, opt, obs);
    std::vector<double> sampled;
    for (std::size_t i = 0; i < rec.times().size(); i += 10)
      sampled.push_back(rec.waveform(0)[i]);
    check("tr", sampled, 2e-6);
  }
}

TEST(Oracle, DenseReferenceMatchesMatexOnLadder) {
  RcLadder ladder;
  ladder.stages = 8;
  ladder.r = 0.5;
  ladder.c = 5e-13;
  ladder.vdd = 1.2;
  ladder.load.v2 = 8e-3;
  ladder.load.delay = 1e-10;
  ladder.load.rise = 1e-10;
  ladder.load.width = 4e-10;
  ladder.load.fall = 2e-10;
  const auto netlist = rc_ladder_netlist(ladder);
  const MnaSystem mna(netlist);
  ASSERT_EQ(mna.dimension(), 8);
  const DenseReference ref(mna);
  const double t_end = 4e-11 * 40;
  const auto times = uniform_grid(0.0, t_end, 4e-11);
  const std::vector<la::index_t> probes = {
      mna.unknown_index(netlist.find_node("n1")),
      mna.unknown_index(netlist.find_node("n8"))};
  const auto expected = ref.table(probes, {"n1", "n8"}, times);

  const auto dc = solver::dc_operating_point(mna);
  core::MatexOptions opt;
  opt.gamma = 4e-10;
  opt.tolerance = 1e-10;
  core::MatexCircuitSolver matex(mna, opt, dc.g_factors);
  solver::ProbeRecorder rec(probes);
  auto obs = rec.observer();
  const core::FullInput input(mna);
  matex.run(dc.x, 0.0, t_end, input, times, obs);
  solver::WaveformTable run;
  run.names = expected.names;
  run.times = expected.times;
  run.columns = {rec.waveform(0), rec.waveform(1)};
  EXPECT_LE(max_abs_error(run, expected), 1e-8);

  // And the reference detects a perturbed run.
  run.columns[1][20] += 1e-4;
  EXPECT_GE(max_abs_error(run, expected), 1e-4 - 1e-8);
}

TEST(Oracle, DenseReferenceRejectsIndex2AndNonPwlInputs) {
  // A loop of voltage sources and capacitors (here: a vsource bridging
  // two capacitive nodes) is index-2: no static constraint determines the
  // branch current, the algebraic block G_aa is singular.
  circuit::Netlist cvloop;
  cvloop.add_voltage_source("V", "a", "b", circuit::Waveform::dc(0.1));
  cvloop.add_capacitor("C1", "a", "0", 1e-12);
  cvloop.add_capacitor("C2", "b", "0", 1e-12);
  cvloop.add_resistor("R", "a", "0", 1.0);
  const MnaSystem mna_loop(cvloop);
  EXPECT_THROW(DenseReference ref(mna_loop), InvalidArgument);

  // SIN inputs are not exactly piecewise linear.
  circuit::Netlist sine;
  circuit::SinSpec spec;
  spec.amplitude = 1.0;
  spec.frequency = 1e9;
  sine.add_current_source("I", "a", "0", circuit::Waveform::sin(spec));
  sine.add_resistor("R", "a", "0", 1.0);
  sine.add_capacitor("C", "a", "0", 1e-12);
  const MnaSystem mna_sin(sine);
  EXPECT_THROW(DenseReference ref(mna_sin), InvalidArgument);

  // Size guard.
  const auto rc = single_pole_rc_netlist(rc_spec());
  const MnaSystem mna_rc(rc);
  EXPECT_THROW(DenseReference ref(mna_rc, 0), InvalidArgument);
}

TEST(Oracle, DaePathSolvesPureResistiveDeck) {
  // A resistor divider with no capacitor anywhere used to be rejected
  // ("nonsingular C required"); the index-1 path now solves it: every
  // unknown is algebraic and the response is the instantaneous network
  // solution of the inputs.
  circuit::Netlist divider;
  divider.add_voltage_source("V", "in", "0", circuit::Waveform::dc(1.0));
  divider.add_resistor("R1", "in", "mid", 1.0);
  divider.add_resistor("R2", "mid", "0", 1.0);
  const MnaSystem mna(divider);
  const DenseReference ref(mna);
  EXPECT_EQ(ref.algebraic_count(), ref.dimension());
  const auto times = uniform_grid(0.0, 1e-9, 1e-10);
  const la::index_t probe = mna.unknown_index(divider.find_node("mid"));
  const auto table =
      ref.table(std::vector<la::index_t>{probe}, {"mid"}, times);
  for (const double v : table.columns[0]) EXPECT_NEAR(v, 0.5, 1e-14);
}

TEST(Oracle, DaePathMatchesEliminatedFormulationOnLadder) {
  // The same ladder assembled twice: supplies eliminated (nonsingular C,
  // the classic pure-ODE oracle) and kept (index-1 DAE with a vsource
  // branch current and a capacitance-free supply node). The two oracles
  // integrate different-dimension systems but must produce identical node
  // voltages -- the strongest internal consistency check the Schur path
  // has.
  RcLadder ladder;
  ladder.stages = 6;
  ladder.r = 0.5;
  ladder.c = 5e-13;
  ladder.vdd = 1.2;
  ladder.load.v2 = 8e-3;
  ladder.load.delay = 1e-10;
  ladder.load.rise = 1e-10;
  ladder.load.width = 4e-10;
  ladder.load.fall = 2e-10;
  const auto netlist = rc_ladder_netlist(ladder);
  const MnaSystem mna_ode(netlist);
  circuit::MnaOptions keep;
  keep.eliminate_grounded_vsources = false;
  const MnaSystem mna_dae(netlist, keep);
  ASSERT_GT(mna_dae.dimension(), mna_ode.dimension());
  const DenseReference ref_ode(mna_ode);
  const DenseReference ref_dae(mna_dae);
  EXPECT_EQ(ref_ode.algebraic_count(), 0);
  // Kept supply: the pad node (no decap) and the branch current.
  EXPECT_EQ(ref_dae.algebraic_count(), 2);

  const auto times = uniform_grid(0.0, 4e-11 * 40, 4e-11);
  for (const char* node : {"n1", "n3", "n6"}) {
    const la::index_t p_ode = mna_ode.unknown_index(netlist.find_node(node));
    const la::index_t p_dae = mna_dae.unknown_index(netlist.find_node(node));
    const auto t_ode = ref_ode.table(std::vector<la::index_t>{p_ode},
                                     {node}, times);
    const auto t_dae = ref_dae.table(std::vector<la::index_t>{p_dae},
                                     {node}, times);
    EXPECT_LE(max_abs_error(t_dae, t_ode), 1e-12) << node;
  }
}

TEST(Oracle, DaePathReconstructsVsourceCurrent) {
  // Single-pole RC with the supply kept: the vsource branch current must
  // equal minus the resistor current (vdd - v_n1) / R of the scalar
  // closed form, sample for sample (MNA branch current flows into the
  // source's positive terminal, so a delivering supply is negative).
  const auto rc = rc_spec();
  const auto netlist = single_pole_rc_netlist(rc);
  circuit::MnaOptions keep;
  keep.eliminate_grounded_vsources = false;
  const MnaSystem mna(netlist, keep);
  ASSERT_EQ(mna.dimension(), 3);  // n1, vdd node, branch current
  const DenseReference ref(mna);
  EXPECT_EQ(ref.algebraic_count(), 2);
  const auto times = uniform_grid(0.0, 2e-11 * 80, 2e-11);
  // The branch current is the last unknown (branches follow the nodes).
  const la::index_t branch = mna.dimension() - 1;
  const auto table = ref.table(std::vector<la::index_t>{branch}, {"iV"},
                               times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double v = single_pole_rc_voltage(rc, times[i]);
    EXPECT_NEAR(table.columns[0][i], -(rc.vdd - v) / rc.r, 1e-12)
        << "t = " << times[i];
  }
}

TEST(Oracle, AllSevenMethodsMatchDaeOracleOnVsourceDeck) {
  // The acceptance scenario of the vsource work: a deterministic deck
  // with non-eliminated supplies, series-R straps, capacitance-free
  // nodes, and a supply ramp runs through every method and lands inside
  // the matex-rung tolerance against the Schur-complement oracle.
  const FuzzCase c = vsource_case_from_seed(20140601, 0);
  const FuzzCaseResult result = run_fuzz_case(c, FuzzOptions{});
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.checks.size(), 7u);
  for (const MethodCheck& m : result.checks) {
    EXPECT_TRUE(m.ran) << m.method << ": " << m.error;
    EXPECT_TRUE(m.pass) << m.method << ": max_err " << m.max_err
                        << " tol " << m.tolerance;
  }
}

}  // namespace
}  // namespace matex::verify
