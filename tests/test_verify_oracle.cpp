/// \file test_verify_oracle.cpp
/// \brief The analytic oracle library: closed-form RC agreement with the
///        dense matrix-exponential reference, and every solver checked
///        against both on oracle-sized circuits.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "core/input_view.hpp"
#include "core/matex_solver.hpp"
#include "la/error.hpp"
#include "solver/dc.hpp"
#include "solver/fixed_step.hpp"
#include "solver/observer.hpp"
#include "verify/oracle.hpp"

namespace matex::verify {
namespace {

using circuit::MnaSystem;
using solver::uniform_grid;

SinglePoleRc rc_spec() {
  SinglePoleRc rc;
  rc.r = 0.5;
  rc.c = 2e-12;  // tau = 1 ps
  rc.vdd = 1.8;
  rc.load.v2 = 5e-3;
  rc.load.delay = 2e-10;
  rc.load.rise = 1e-10;
  rc.load.width = 3e-10;
  rc.load.fall = 1e-10;
  return rc;
}

TEST(Oracle, SinglePoleClosedFormStartsAtDcAndRecovers) {
  const auto rc = rc_spec();
  // Before the pulse: the DC operating point (no load current).
  EXPECT_DOUBLE_EQ(single_pole_rc_voltage(rc, 0.0), rc.vdd);
  EXPECT_DOUBLE_EQ(single_pole_rc_voltage(rc, 1e-10), rc.vdd);
  // Mid-pulse (plateau, many tau after the edge): v = vdd - R * I.
  const double plateau = single_pole_rc_voltage(rc, 5e-10);
  EXPECT_NEAR(plateau, rc.vdd - rc.r * rc.load.v2, 1e-12);
  // Long after the pulse: back to vdd.
  EXPECT_NEAR(single_pole_rc_voltage(rc, 5e-9), rc.vdd, 1e-12);
}

TEST(Oracle, DenseReferenceMatchesClosedFormToMachinePrecision) {
  // Two independent oracles -- scalar closed form and dense expm on the
  // assembled MNA -- must agree to rounding error. This is the strongest
  // internal consistency check the oracle library has.
  const auto rc = rc_spec();
  const auto netlist = single_pole_rc_netlist(rc);
  const MnaSystem mna(netlist);
  ASSERT_EQ(mna.dimension(), 1);
  const DenseReference ref(mna);
  const auto times = uniform_grid(0.0, 2e-11 * 80, 2e-11);
  const la::index_t probe = mna.unknown_index(netlist.find_node("n1"));
  const auto table = ref.table(std::vector<la::index_t>{probe}, {"n1"},
                               times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(table.columns[0][i], single_pole_rc_voltage(rc, times[i]),
                1e-12);
}

TEST(Oracle, AllMethodsMatchClosedFormOnSinglePole) {
  const auto rc = rc_spec();
  const auto netlist = single_pole_rc_netlist(rc);
  const MnaSystem mna(netlist);
  // t_end as an exact multiple of the output step, so uniform_grid and
  // the fixed-step observer cadence agree on the sample count.
  const double t_end = 2e-11 * 80;
  const auto times = uniform_grid(0.0, t_end, 2e-11);
  const la::index_t probe = mna.unknown_index(netlist.find_node("n1"));
  const auto dc = solver::dc_operating_point(mna);

  const auto check = [&](const char* what, const std::vector<double>& wave,
                         double tol) {
    ASSERT_EQ(wave.size(), times.size()) << what;
    for (std::size_t i = 0; i < times.size(); ++i)
      EXPECT_NEAR(wave[i], single_pole_rc_voltage(rc, times[i]), tol)
          << what << " at t = " << times[i];
  };

  for (const auto kind :
       {krylov::KrylovKind::kRational, krylov::KrylovKind::kInverted}) {
    core::MatexOptions opt;
    opt.kind = kind;
    opt.gamma = 2e-10;
    opt.tolerance = 1e-10;
    core::MatexCircuitSolver matex(mna, opt, dc.g_factors);
    solver::ProbeRecorder rec({probe});
    auto obs = rec.observer();
    const core::FullInput input(mna);
    matex.run(dc.x, 0.0, t_end, input, times, obs);
    // MATEX is exact per PWL segment up to the Krylov budget.
    check(krylov::kind_name(kind), rec.waveform(0), 1e-8);
  }
  {
    solver::FixedStepOptions opt;
    opt.t_end = t_end;
    opt.h = 2e-12;  // well under tau: TR error O(h^2)
    solver::ProbeRecorder rec({probe});
    auto obs = rec.observer();
    run_fixed_step(mna, dc.x, solver::StepMethod::kTrapezoidal, opt, obs);
    std::vector<double> sampled;
    for (std::size_t i = 0; i < rec.times().size(); i += 10)
      sampled.push_back(rec.waveform(0)[i]);
    check("tr", sampled, 2e-6);
  }
}

TEST(Oracle, DenseReferenceMatchesMatexOnLadder) {
  RcLadder ladder;
  ladder.stages = 8;
  ladder.r = 0.5;
  ladder.c = 5e-13;
  ladder.vdd = 1.2;
  ladder.load.v2 = 8e-3;
  ladder.load.delay = 1e-10;
  ladder.load.rise = 1e-10;
  ladder.load.width = 4e-10;
  ladder.load.fall = 2e-10;
  const auto netlist = rc_ladder_netlist(ladder);
  const MnaSystem mna(netlist);
  ASSERT_EQ(mna.dimension(), 8);
  const DenseReference ref(mna);
  const double t_end = 4e-11 * 40;
  const auto times = uniform_grid(0.0, t_end, 4e-11);
  const std::vector<la::index_t> probes = {
      mna.unknown_index(netlist.find_node("n1")),
      mna.unknown_index(netlist.find_node("n8"))};
  const auto expected = ref.table(probes, {"n1", "n8"}, times);

  const auto dc = solver::dc_operating_point(mna);
  core::MatexOptions opt;
  opt.gamma = 4e-10;
  opt.tolerance = 1e-10;
  core::MatexCircuitSolver matex(mna, opt, dc.g_factors);
  solver::ProbeRecorder rec(probes);
  auto obs = rec.observer();
  const core::FullInput input(mna);
  matex.run(dc.x, 0.0, t_end, input, times, obs);
  solver::WaveformTable run;
  run.names = expected.names;
  run.times = expected.times;
  run.columns = {rec.waveform(0), rec.waveform(1)};
  EXPECT_LE(max_abs_error(run, expected), 1e-8);

  // And the reference detects a perturbed run.
  run.columns[1][20] += 1e-4;
  EXPECT_GE(max_abs_error(run, expected), 1e-4 - 1e-8);
}

TEST(Oracle, DenseReferenceRejectsSingularCAndNonPwlInputs) {
  // A resistor divider with no capacitor at the middle node: C singular.
  circuit::Netlist divider;
  divider.add_voltage_source("V", "in", "0", circuit::Waveform::dc(1.0));
  divider.add_resistor("R1", "in", "mid", 1.0);
  divider.add_resistor("R2", "mid", "0", 1.0);
  const MnaSystem mna_div(divider);
  EXPECT_THROW(DenseReference ref(mna_div), InvalidArgument);

  // SIN inputs are not exactly piecewise linear.
  circuit::Netlist sine;
  circuit::SinSpec spec;
  spec.amplitude = 1.0;
  spec.frequency = 1e9;
  sine.add_current_source("I", "a", "0", circuit::Waveform::sin(spec));
  sine.add_resistor("R", "a", "0", 1.0);
  sine.add_capacitor("C", "a", "0", 1e-12);
  const MnaSystem mna_sin(sine);
  EXPECT_THROW(DenseReference ref(mna_sin), InvalidArgument);

  // Size guard.
  const auto rc = single_pole_rc_netlist(rc_spec());
  const MnaSystem mna_rc(rc);
  EXPECT_THROW(DenseReference ref(mna_rc, 0), InvalidArgument);
}

}  // namespace
}  // namespace matex::verify
