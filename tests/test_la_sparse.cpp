#include "la/sparse_csc.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(TripletMatrix, SumsDuplicateEntries) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 1, -1.0);
  const auto a = t.to_csc();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

TEST(TripletMatrix, OutOfRangeThrows) {
  TripletMatrix t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(t.add(0, -1, 1.0), InvalidArgument);
}

TEST(TripletMatrix, EmptyMatrixCompresses) {
  TripletMatrix t(3, 3);
  const auto a = t.to_csc();
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.rows(), 3);
  std::vector<double> x{1, 2, 3}, y(3, 7.0);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(CscMatrix, RowIndicesSortedWithinColumns) {
  TripletMatrix t(4, 2);
  t.add(3, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, 3.0);
  t.add(1, 1, 4.0);
  const auto a = t.to_csc();
  a.validate();
  EXPECT_EQ(a.row_idx()[0], 0);
  EXPECT_EQ(a.row_idx()[1], 3);
  EXPECT_EQ(a.row_idx()[2], 1);
  EXPECT_EQ(a.row_idx()[3], 2);
}

TEST(CscMatrix, MalformedColPtrThrows) {
  EXPECT_THROW(CscMatrix(2, 2, {0, 2}, {0, 1}, {1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(CscMatrix(2, 2, {0, 1, 1}, {5}, {1.0}), InvalidArgument);
  // Duplicate row index within a column is rejected.
  EXPECT_THROW(CscMatrix(2, 1, {0, 2}, {1, 1}, {1.0, 2.0}), InvalidArgument);
}

TEST(CscMatrix, IdentityMultiplyIsNoop) {
  const auto eye = CscMatrix::identity(5);
  testing::Rng rng(1);
  const auto x = testing::random_vector(5, rng);
  std::vector<double> y(5);
  eye.multiply(x, y);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(CscMatrix, MultiplyMatchesDense) {
  testing::Rng rng(2);
  const auto a = testing::random_sparse_spd_like(20, 0.2, rng);
  const auto dense = a.to_dense_column_major();
  const auto x = testing::random_vector(20, rng);
  std::vector<double> y(20), yref(20, 0.0);
  a.multiply(x, y);
  for (index_t j = 0; j < 20; ++j)
    for (index_t i = 0; i < 20; ++i)
      yref[static_cast<std::size_t>(i)] +=
          dense[static_cast<std::size_t>(j) * 20 +
                static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(j)];
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);
}

TEST(CscMatrix, MultiplyAddAccumulates) {
  const auto eye = CscMatrix::identity(3);
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 10.0, 10.0};
  eye.multiply_add(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(CscMatrix, TransposeRoundTrip) {
  testing::Rng rng(3);
  const auto a = testing::random_sparse_spd_like(15, 0.3, rng);
  const auto att = a.transposed().transposed();
  EXPECT_DOUBLE_EQ(max_abs_diff(a, att), 0.0);
}

TEST(CscMatrix, TransposeMultiplyConsistent) {
  testing::Rng rng(4);
  const auto a = testing::random_sparse_spd_like(12, 0.4, rng);
  const auto x = testing::random_vector(12, rng);
  std::vector<double> y1(12), y2(12);
  a.multiply_transpose(x, y1);
  a.transposed().multiply(x, y2);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(CscMatrix, DiagonalExtraction) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 5.0);
  t.add(2, 2, -1.0);
  t.add(0, 1, 9.0);
  const auto d = t.to_csc().diagonal();
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -1.0);
}

TEST(CscMatrix, Norm1AndNormMax) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 3.0);
  t.add(1, 0, -4.0);
  t.add(0, 1, 1.0);
  const auto a = t.to_csc();
  EXPECT_DOUBLE_EQ(a.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_max(), 4.0);
}

TEST(CscMatrix, AddScaledFormsLinearCombination) {
  const auto eye = CscMatrix::identity(3);
  const auto g = testing::grid_laplacian(1, 3);
  const auto s = add_scaled(2.0, eye, -1.0, g);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NEAR(s.at(i, j), 2.0 * (i == j ? 1.0 : 0.0) - g.at(i, j), 1e-15);
}

TEST(CscMatrix, AddScaledShapeMismatchThrows) {
  EXPECT_THROW(
      add_scaled(1.0, CscMatrix::identity(2), 1.0, CscMatrix::identity(3)),
      InvalidArgument);
}

TEST(CscMatrix, PermutedReordersEntries) {
  // 2x2: A = [[1,2],[3,4]]; swap both rows and columns.
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 3.0);
  t.add(1, 1, 4.0);
  const auto a = t.to_csc();
  const std::vector<index_t> pinv{1, 0};
  const std::vector<index_t> q{1, 0};
  const auto b = a.permuted(pinv, q);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 1.0);
}

TEST(CscMatrix, GridLaplacianPatternIsSymmetric) {
  const auto g = testing::grid_laplacian(4, 5);
  EXPECT_TRUE(g.has_symmetric_pattern());
  const auto adj = g.symmetric_adjacency();
  // Interior node has 4 neighbors; corner has 2.
  EXPECT_EQ(adj[0].size(), 2u);
  EXPECT_EQ(adj[6].size(), 4u);  // node (1,1) in a 4x5 grid
}

class SpmvPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpmvPropertyTest, LinearityOfMultiply) {
  testing::Rng rng(GetParam());
  const index_t n = static_cast<index_t>(5 + rng.index(40));
  const auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  const auto x = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto y = testing::random_vector(static_cast<std::size_t>(n), rng);
  const double c = rng.uniform(-2.0, 2.0);
  std::vector<double> xy(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    xy[static_cast<std::size_t>(i)] = c * x[static_cast<std::size_t>(i)] +
                                      y[static_cast<std::size_t>(i)];
  std::vector<double> lhs(static_cast<std::size_t>(n)),
      ax(static_cast<std::size_t>(n)), ay(static_cast<std::size_t>(n));
  a.multiply(xy, lhs);
  a.multiply(x, ax);
  a.multiply(y, ay);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(lhs[static_cast<std::size_t>(i)],
                c * ax[static_cast<std::size_t>(i)] +
                    ay[static_cast<std::size_t>(i)],
                1e-11);
}

TEST_P(SpmvPropertyTest, TransposeDotIdentity) {
  // y' (A x) == (A' y)' x
  testing::Rng rng(GetParam() + 333);
  const index_t n = static_cast<index_t>(5 + rng.index(30));
  const auto a = testing::random_sparse_spd_like(n, 0.25, rng);
  const auto x = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto y = testing::random_vector(static_cast<std::size_t>(n), rng);
  std::vector<double> ax(static_cast<std::size_t>(n)),
      aty(static_cast<std::size_t>(n));
  a.multiply(x, ax);
  a.multiply_transpose(y, aty);
  EXPECT_NEAR(dot(y, ax), dot(aty, x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmvPropertyTest,
                         ::testing::Range<std::size_t>(1, 16));

}  // namespace
}  // namespace matex::la
