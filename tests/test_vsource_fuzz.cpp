/// \file test_vsource_fuzz.cpp
/// \brief The vsource-deck fuzz tier (ctest label: fuzz): seeded random
///        decks with non-eliminated voltage sources, series-R supply
///        straps, capacitance-free nodes, and PWL supply ramps, every
///        case differentially checked across all seven methods against
///        the dense index-1 DAE oracle (Schur complement + exact expm).
///
/// Case count and seed are environment-tunable so CI can pin them:
///   MATEX_VSOURCE_FUZZ_CASES (default 120)
///   MATEX_FUZZ_SEED          (default 20140601, shared with the classic
///                             tier so one red seed reproduces both)
///   MATEX_FUZZ_ARTIFACT_DIR  (default fuzz-artifacts)
#include <cstdlib>
#include <iostream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "verify/fuzz.hpp"

namespace matex::verify {
namespace {

using testing::env_long;
using testing::env_string;

TEST(VsourceFuzz, SeededDaeSweepHasZeroDiscrepancies) {
  FuzzOptions opt;
  opt.cases = static_cast<int>(env_long("MATEX_VSOURCE_FUZZ_CASES", 120));
  opt.seed =
      static_cast<std::uint64_t>(env_long("MATEX_FUZZ_SEED", 20140601));
  opt.artifact_dir = env_string("MATEX_FUZZ_ARTIFACT_DIR", "fuzz-artifacts");
  opt.log = &std::cout;

  const FuzzReport report = run_vsource_fuzz(opt);
  EXPECT_EQ(report.checks, static_cast<long long>(opt.cases) * 7);
  EXPECT_EQ(report.failures, 0)
      << report.failures << " of " << report.cases
      << " vsource cases diverged; repro artifacts under "
      << opt.artifact_dir << " (seed " << opt.seed << ")";
  EXPECT_LT(report.max_err_ratio, 1.0);
}

TEST(VsourceFuzz, GateTripsOnInjectedPerturbation) {
  // The dense-oracle comparison path must actually gate: inject a
  // perturbation well above the matex rung into one method and require
  // the campaign to flag it.
  FuzzOptions opt;
  opt.cases = 2;
  opt.seed =
      static_cast<std::uint64_t>(env_long("MATEX_FUZZ_SEED", 20140601));
  opt.minimize_failures = false;
  opt.inject_perturbation = 0.5;
  opt.inject_method = "rmatex";
  const FuzzReport report = run_vsource_fuzz(opt);
  EXPECT_EQ(report.failures, opt.cases);
}

}  // namespace
}  // namespace matex::verify
