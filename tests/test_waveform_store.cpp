/// \file test_waveform_store.cpp
/// \brief Locks the binary waveform store: bit-exact round trips, the
///        deterministic-bytes guarantee the sharded campaign gate relies
///        on, and recovery from truncation / chunk / footer corruption.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "solver/waveform_store.hpp"
#include "test_util.hpp"

namespace matex::solver {
namespace {

using testing::Rng;

struct TestChunk {
  std::uint32_t scenario_index;
  std::uint64_t fingerprint;
  std::string name;
  std::vector<std::string> probe_names;
  std::vector<double> times;
  std::vector<std::vector<double>> columns;
};

TestChunk random_chunk(Rng& rng, std::uint32_t scenario_index) {
  TestChunk c;
  c.scenario_index = scenario_index;
  c.fingerprint = rng.next_u64();
  c.name = testing::numbered("scenario-", scenario_index);
  const std::size_t probes = 1 + rng.next_u64() % 4;
  const std::size_t samples = rng.next_u64() % 200;  // 0 is legal
  for (std::size_t p = 0; p < probes; ++p)
    c.probe_names.push_back(testing::numbered("n", static_cast<long long>(
                                                       rng.next_u64() % 997)));
  for (std::size_t i = 0; i < samples; ++i)
    c.times.push_back(rng.uniform(0.0, 1e-9));
  for (std::size_t p = 0; p < probes; ++p) {
    std::vector<double> col;
    for (std::size_t i = 0; i < samples; ++i)
      col.push_back(rng.uniform(-2.0, 2.0));
    c.columns.push_back(std::move(col));
  }
  return c;
}

void write_chunks(const std::string& path,
                  const std::vector<TestChunk>& chunks) {
  WaveformStoreWriter writer(path);
  for (const TestChunk& c : chunks)
    writer.append(c.scenario_index, c.fingerprint, c.name, c.probe_names,
                  c.times, c.columns);
  writer.close();
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Bitwise (not tolerance) comparison: the store must round-trip the
/// exact doubles it was given.
void expect_bit_identical(const WaveformStoreChunk& got, const TestChunk& want) {
  EXPECT_EQ(got.scenario_index, want.scenario_index);
  EXPECT_EQ(got.fingerprint, want.fingerprint);
  EXPECT_EQ(got.name, want.name);
  ASSERT_EQ(got.probe_names, want.probe_names);
  ASSERT_EQ(got.times.size(), want.times.size());
  for (std::size_t i = 0; i < want.times.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.times[i]),
              std::bit_cast<std::uint64_t>(want.times[i]));
  ASSERT_EQ(got.columns.size(), want.columns.size());
  for (std::size_t p = 0; p < want.columns.size(); ++p) {
    ASSERT_EQ(got.columns[p].size(), want.columns[p].size());
    for (std::size_t i = 0; i < want.columns[p].size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.columns[p][i]),
                std::bit_cast<std::uint64_t>(want.columns[p][i]));
  }
}

TEST(WaveformStore, RoundTripFuzzBitIdentical) {
  const long cases = testing::env_long("MATEX_FUZZ_CASES", 20);
  Rng rng(static_cast<std::uint64_t>(
      testing::env_long("MATEX_FUZZ_SEED", 20140601)));
  const std::string path = "waveform_store_roundtrip.tmp";
  for (long cs = 0; cs < cases; ++cs) {
    std::vector<TestChunk> chunks;
    const std::size_t n = 1 + rng.next_u64() % 5;
    for (std::size_t i = 0; i < n; ++i)
      chunks.push_back(random_chunk(rng, static_cast<std::uint32_t>(i)));
    write_chunks(path, chunks);

    WaveformStoreReader reader(path);
    EXPECT_FALSE(reader.recovered_by_scan());
    EXPECT_EQ(reader.corrupt_chunks_skipped(), 0);
    ASSERT_EQ(reader.chunks().size(), chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
      expect_bit_identical(reader.chunks()[i], chunks[i]);
  }
  std::remove(path.c_str());
}

TEST(WaveformStore, SameChunksSameBytes) {
  Rng rng(7);
  std::vector<TestChunk> chunks;
  for (std::uint32_t i = 0; i < 4; ++i) chunks.push_back(random_chunk(rng, i));
  write_chunks("waveform_store_a.tmp", chunks);
  write_chunks("waveform_store_b.tmp", chunks);
  EXPECT_EQ(slurp("waveform_store_a.tmp"), slurp("waveform_store_b.tmp"));
  std::remove("waveform_store_a.tmp");
  std::remove("waveform_store_b.tmp");
}

TEST(WaveformStore, ToTableCopiesChunk) {
  Rng rng(11);
  const TestChunk c = random_chunk(rng, 3);
  const std::string path = "waveform_store_table.tmp";
  write_chunks(path, {c});
  WaveformStoreReader reader(path);
  ASSERT_EQ(reader.chunks().size(), 1u);
  const WaveformTable table = reader.chunks()[0].to_table();
  EXPECT_EQ(table.names, c.probe_names);
  EXPECT_EQ(table.times, c.times);
  EXPECT_EQ(table.columns, c.columns);
  std::remove(path.c_str());
}

TEST(WaveformStore, EmptyStoreRoundTrips) {
  const std::string path = "waveform_store_empty.tmp";
  write_chunks(path, {});
  WaveformStoreReader reader(path);
  EXPECT_FALSE(reader.recovered_by_scan());
  EXPECT_TRUE(reader.chunks().empty());
  std::remove(path.c_str());
}

TEST(WaveformStore, TruncatedTailRecoversIntactChunks) {
  Rng rng(13);
  std::vector<TestChunk> chunks;
  for (std::uint32_t i = 0; i < 3; ++i) chunks.push_back(random_chunk(rng, i));
  const std::string path = "waveform_store_trunc.tmp";
  write_chunks(path, chunks);
  std::vector<unsigned char> bytes = slurp(path);
  // Cut mid-way through the file: the footer is gone and the chunk at
  // the cut is half-written, exactly the shape a killed worker leaves.
  bytes.resize(bytes.size() / 2);
  spit(path, bytes);

  WaveformStoreReader reader(path);
  EXPECT_TRUE(reader.recovered_by_scan());
  EXPECT_LT(reader.chunks().size(), chunks.size());
  for (std::size_t i = 0; i < reader.chunks().size(); ++i)
    expect_bit_identical(reader.chunks()[i], chunks[i]);
  std::remove(path.c_str());
}

TEST(WaveformStore, CorruptChunkSkippedNotFatal) {
  Rng rng(17);
  std::vector<TestChunk> chunks;
  for (std::uint32_t i = 0; i < 3; ++i) {
    TestChunk c = random_chunk(rng, i);
    if (c.times.empty()) {  // guarantee payload bytes to flip
      c.times.push_back(1e-12);
      for (auto& col : c.columns) col.push_back(0.5);
    }
    chunks.push_back(std::move(c));
  }
  const std::string path = "waveform_store_corrupt.tmp";
  write_chunks(path, chunks);
  std::vector<unsigned char> bytes = slurp(path);
  // Flip one payload byte in the last chunk (the 8 bytes right before
  // the footer are waveform data, well clear of any chunk header).
  const std::size_t footer_off = bytes.size() - 16 - 8 -
                                 3 * 24 - 8;  // trailer+checksum+entries+hdr
  bytes[footer_off - 4] ^= 0x40;
  spit(path, bytes);

  WaveformStoreReader reader(path);
  EXPECT_FALSE(reader.recovered_by_scan());  // footer index still valid
  EXPECT_EQ(reader.corrupt_chunks_skipped(), 1);
  ASSERT_EQ(reader.chunks().size(), 2u);
  expect_bit_identical(reader.chunks()[0], chunks[0]);
  expect_bit_identical(reader.chunks()[1], chunks[1]);
  std::remove(path.c_str());
}

TEST(WaveformStore, CorruptFooterFallsBackToScan) {
  Rng rng(19);
  std::vector<TestChunk> chunks;
  for (std::uint32_t i = 0; i < 3; ++i) chunks.push_back(random_chunk(rng, i));
  const std::string path = "waveform_store_footer.tmp";
  write_chunks(path, chunks);
  std::vector<unsigned char> bytes = slurp(path);
  bytes[bytes.size() - 16 - 8 - 2] ^= 0x01;  // inside the index checksum
  spit(path, bytes);

  WaveformStoreReader reader(path);
  EXPECT_TRUE(reader.recovered_by_scan());
  ASSERT_EQ(reader.chunks().size(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i)
    expect_bit_identical(reader.chunks()[i], chunks[i]);
  std::remove(path.c_str());
}

TEST(WaveformStore, RejectsNonStoreFiles) {
  const std::string path = "waveform_store_not_a_store.tmp";
  {
    std::ofstream out(path);
    out << "time n1 n2\n0.0 1.0 1.8\n";
  }
  EXPECT_THROW(WaveformStoreReader{path}, ParseError);
  std::remove(path.c_str());
}

TEST(WaveformStore, RejectsNewerVersion) {
  Rng rng(23);
  const std::string path = "waveform_store_version.tmp";
  write_chunks(path, {random_chunk(rng, 0)});
  std::vector<unsigned char> bytes = slurp(path);
  bytes[8] = 0xFF;  // version field, little-endian low byte
  spit(path, bytes);
  EXPECT_THROW(WaveformStoreReader{path}, ParseError);
  std::remove(path.c_str());
}

TEST(WaveformStore, MissingFileThrows) {
  EXPECT_THROW(WaveformStoreReader{"waveform_store_missing.tmp"}, Error);
}

}  // namespace
}  // namespace matex::solver
