// matex-lint behavior tests: every fixture violation is flagged with the
// right rule on the right line, the clean counterparts pass, and the
// live tree self-checks green (so the lint gate in CI can never rot
// silently).
//
// Fixtures carry their own oracle: a line that must be flagged ends with
// an `EXPECT-LINT(<rule>)` comment annotation. The test fails on both
// missed violations and unexpected findings, so false positives break it
// as loudly as false negatives.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using matex::lint::Finding;
using matex::lint::LintConfig;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string testdata(const std::string& name) {
  return std::string(MATEX_LINT_TESTDATA_DIR) + "/" + name;
}

using LineRule = std::pair<int, std::string>;

/// Parses the `EXPECT-LINT(rule)` oracle annotations out of a fixture.
std::set<LineRule> expected_findings(const std::string& content) {
  std::set<LineRule> expected;
  std::istringstream in(content);
  std::string line;
  int line_no = 0;
  static const std::string kTag = "EXPECT-LINT(";
  while (std::getline(in, line)) {
    ++line_no;
    for (std::size_t p = line.find(kTag); p != std::string::npos;
         p = line.find(kTag, p + kTag.size())) {
      const std::size_t close = line.find(')', p);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unclosed EXPECT-LINT on line " << line_no;
        break;
      }
      expected.emplace(
          line_no, line.substr(p + kTag.size(), close - p - kTag.size()));
    }
  }
  return expected;
}

std::set<LineRule> actual_findings(const std::vector<Finding>& findings) {
  std::set<LineRule> actual;
  for (const Finding& f : findings) actual.emplace(f.line, f.rule);
  return actual;
}

void expect_fixture_matches(const std::string& name,
                            const std::set<LineRule>& expected,
                            const std::vector<Finding>& findings) {
  const std::set<LineRule> actual = actual_findings(findings);
  for (const LineRule& e : expected)
    EXPECT_TRUE(actual.count(e) > 0)
        << name << ": expected a '" << e.second << "' finding on line "
        << e.first << " but the linter missed it";
  for (const Finding& f : findings)
    EXPECT_TRUE(expected.count({f.line, f.rule}) > 0)
        << name << ": unexpected finding " << f.str();
}

/// Lints one fixture with every rule forced in scope and compares the
/// finding set against the fixture's own EXPECT-LINT annotations.
void run_fixture(const std::string& name) {
  SCOPED_TRACE(name);
  const std::string content = read_file(testdata(name));
  LintConfig config;
  config.force_all_scopes = true;
  expect_fixture_matches(
      name, expected_findings(content),
      matex::lint::lint_file(name, content, config));
}

TEST(MatexLint, CatchAllFixtures) {
  run_fixture("catch_all_violation.cpp");
  run_fixture("catch_all_clean.cpp");
}

TEST(MatexLint, AtomicOrderFixtures) {
  run_fixture("atomic_order_violation.cpp");
  run_fixture("atomic_order_clean.cpp");
}

TEST(MatexLint, DeterminismFixtures) {
  run_fixture("determinism_violation.cpp");
  run_fixture("determinism_clean.cpp");
}

TEST(MatexLint, FloatFormatFixtures) {
  run_fixture("float_format_violation.cpp");
  run_fixture("float_format_clean.cpp");
}

TEST(MatexLint, NolintReasonFixtures) {
  run_fixture("nolint_violation.cpp");
  run_fixture("nolint_clean.cpp");
}

// The two bugs PR 8 shipped and later fixed, rebuilt as fixtures: the
// linter must refuse both shapes so they cannot come back.
TEST(MatexLint, Pr8RegressionShapes) {
  run_fixture("pr8_cache_catch.cpp");
  run_fixture("pr8_two_loads.cpp");
}

TEST(MatexLint, SiteStringFixtures) {
  LintConfig config;
  config.readme = read_file(testdata("README_sites.md"));

  const std::string clean = read_file(testdata("site_strings_clean.cpp"));
  EXPECT_TRUE(matex::lint::check_sites(
                  matex::lint::collect_sites("site_strings_clean.cpp",
                                             clean),
                  config)
                  .empty());

  const std::string bad =
      read_file(testdata("site_strings_violation.cpp"));
  expect_fixture_matches(
      "site_strings_violation.cpp", expected_findings(bad),
      matex::lint::check_sites(
          matex::lint::collect_sites("site_strings_violation.cpp", bad),
          config));
}

TEST(MatexLint, CollectSitesFindsLiteralFormsOnly) {
  const std::string src =
      "void f() {\n"
      "  MATEX_FAILPOINT(\"a.site\");\n"
      "  MATEX_SPAN(\"b.span\", \"n\", 1);\n"
      "  obs::instant(\"c.instant\");\n"
      "  obs::Span guard(\"d.span\", \"k\", 2);\n"
      "  MATEX_FAILPOINT(forwarded_name);  // not a literal: skipped\n"
      "}\n";
  const auto sites = matex::lint::collect_sites("x.cpp", src);
  ASSERT_EQ(sites.size(), 4u);
  EXPECT_EQ(sites[0].name, "a.site");
  EXPECT_TRUE(sites[0].failpoint);
  EXPECT_EQ(sites[0].line, 2);
  EXPECT_EQ(sites[1].name, "b.span");
  EXPECT_FALSE(sites[1].failpoint);
  EXPECT_EQ(sites[2].name, "c.instant");
  EXPECT_EQ(sites[3].name, "d.span");
  EXPECT_EQ(sites[3].line, 5);
}

TEST(MatexLint, AllowMarkerCoversMultiLineStatement) {
  const std::string src =
      "#include <string>\n"
      "std::string f(std::size_t a, std::size_t b) {\n"
      "  // matex-lint: allow(float-format): integer counts in a\n"
      "  // diagnostic; never byte-compared.\n"
      "  return std::to_string(a) + \" vs \" +\n"
      "         std::to_string(b);\n"
      "}\n";
  LintConfig config;
  config.force_all_scopes = true;
  EXPECT_TRUE(matex::lint::lint_file("x.cpp", src, config).empty())
      << "marker must cover every line of the following statement";
}

// A .cpp learns its atomic members from the sibling header: writes in
// the implementation file are flagged even though the declaration lives
// in the .hpp.
TEST(MatexLint, SiblingHeaderSuppliesAtomicDecls) {
  const std::string header =
      "#include <atomic>\n"
      "struct S { std::atomic<int> pending_{0}; void go(); };\n";
  const std::string impl = "void S::go() { pending_ = 7; }\n";
  LintConfig config;
  config.force_all_scopes = true;
  const auto findings =
      matex::lint::lint_file("s.cpp", impl, config, header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "atomic-order");
  EXPECT_EQ(findings[0].line, 1);
}

// The gate CI relies on: the live tree is clean. Any convention
// violation added to src/ or tools/ fails here (and in the standalone
// `matex_lint` ctest) with the exact file:line.
TEST(MatexLint, RepositorySelfCheckIsClean) {
  const auto findings = matex::lint::lint_tree(MATEX_LINT_REPO_ROOT);
  for (const Finding& f : findings) ADD_FAILURE() << f.str();
}

}  // namespace
