#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "solver/observer.hpp"
#include "solver/waveform_io.hpp"

namespace matex::solver {
namespace {

WaveformTable sample_table() {
  WaveformTable t;
  t.names = {"n1", "n2"};
  t.times = {0.0, 1e-11, 2e-11};
  t.columns = {{1.0, 0.9, 0.95}, {1.8, 1.75, 1.77}};
  return t;
}

TEST(WaveformIo, RoundTripPreservesData) {
  const auto t = sample_table();
  std::ostringstream out;
  write_waveform_table(t, out);
  std::istringstream in(out.str());
  const auto back = read_waveform_table(in);
  ASSERT_EQ(back.names, t.names);
  ASSERT_EQ(back.times.size(), t.times.size());
  for (std::size_t i = 0; i < t.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.times[i], t.times[i]);
    EXPECT_DOUBLE_EQ(back.columns[0][i], t.columns[0][i]);
    EXPECT_DOUBLE_EQ(back.columns[1][i], t.columns[1][i]);
  }
}

TEST(WaveformIo, FromRecorder) {
  ProbeRecorder rec({0, 2});
  std::vector<double> x{1.0, 2.0, 3.0};
  rec(0.0, x);
  x[2] = 5.0;
  rec(1.0, x);
  const auto t = WaveformTable::from_recorder(rec, {"a", "c"});
  EXPECT_EQ(t.names[1], "c");
  EXPECT_DOUBLE_EQ(t.columns[1][1], 5.0);
  EXPECT_THROW(WaveformTable::from_recorder(rec, {"only-one"}),
               InvalidArgument);
}

TEST(WaveformIo, CompareIdenticalIsZero) {
  const auto t = sample_table();
  const auto stats = compare_waveform_tables(t, t);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.0);
  EXPECT_EQ(stats.count, 6u);
}

TEST(WaveformIo, ComparePicksSharedColumnsByName) {
  const auto a = sample_table();
  WaveformTable b = sample_table();
  b.names = {"n2", "n1"};  // swapped order: matching is by name
  std::swap(b.columns[0], b.columns[1]);
  const auto stats = compare_waveform_tables(a, b);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.0);

  WaveformTable c = sample_table();
  c.names = {"x", "y"};
  EXPECT_THROW(compare_waveform_tables(a, c), InvalidArgument);
}

TEST(WaveformIo, CompareDetectsDifferences) {
  const auto a = sample_table();
  auto b = sample_table();
  b.columns[1][2] += 0.5;
  const auto stats = compare_waveform_tables(a, b);
  EXPECT_NEAR(stats.max_abs, 0.5, 1e-15);
}

TEST(WaveformIo, CompareRejectsMismatchedAxes) {
  const auto a = sample_table();
  auto b = sample_table();
  b.times[1] = 5e-11;
  EXPECT_THROW(compare_waveform_tables(a, b), InvalidArgument);
  b = sample_table();
  b.times.pop_back();
  for (auto& col : b.columns) col.pop_back();
  EXPECT_THROW(compare_waveform_tables(a, b), InvalidArgument);
}

TEST(WaveformIo, MalformedTablesThrow) {
  std::istringstream empty("");
  EXPECT_THROW(read_waveform_table(empty), ParseError);
  std::istringstream bad_header("wrong n1\n0 1\n");
  EXPECT_THROW(read_waveform_table(bad_header), ParseError);
  std::istringstream no_cols("time\n");
  EXPECT_THROW(read_waveform_table(no_cols), ParseError);
  std::istringstream short_row("time a b\n0.0 1.0\n");
  EXPECT_THROW(read_waveform_table(short_row), ParseError);
}

TEST(WaveformIo, RoundTripPreservesExtremeValuesExactly) {
  // The writer uses precision 17, which round-trips every finite double
  // bit for bit -- including denormals, negative zero, and values at the
  // exponent extremes (golden-style workflows depend on this).
  WaveformTable t;
  t.names = {"v"};
  t.times = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  t.columns = {{1.0 / 3.0, -0.0, 4.9e-324, 1.7976931348623157e308,
                2.2250738585072014e-308, -1.8000000000000001e-9,
                123456789.12345679}};
  std::ostringstream out;
  write_waveform_table(t, out);
  std::istringstream in(out.str());
  const auto back = read_waveform_table(in);
  ASSERT_EQ(back.columns[0].size(), t.columns[0].size());
  for (std::size_t i = 0; i < t.columns[0].size(); ++i) {
    EXPECT_EQ(back.columns[0][i], t.columns[0][i]);
    // Bit-level identity (distinguishes -0.0 from +0.0).
    EXPECT_EQ(std::signbit(back.columns[0][i]),
              std::signbit(t.columns[0][i]));
  }
}

TEST(WaveformIo, RoundTripEmptyTableKeepsHeader) {
  // A table with probes but zero samples is legal (e.g. a campaign that
  // recorded nothing yet) and must survive the round trip.
  WaveformTable t;
  t.names = {"a", "b"};
  t.columns = {{}, {}};
  std::ostringstream out;
  write_waveform_table(t, out);
  std::istringstream in(out.str());
  const auto back = read_waveform_table(in);
  EXPECT_EQ(back.names, t.names);
  EXPECT_TRUE(back.times.empty());
  ASSERT_EQ(back.columns.size(), 2u);
  EXPECT_TRUE(back.columns[0].empty());
}

TEST(WaveformIo, ReaderSkipsCommentsAndBlankLines) {
  std::istringstream in(
      "* leading comment\n"
      "\n"
      "time n1\n"
      "* interleaved comment\n"
      "0 1.5\n"
      "\n"
      "1e-11 1.25\n");
  const auto t = read_waveform_table(in);
  ASSERT_EQ(t.times.size(), 2u);
  EXPECT_DOUBLE_EQ(t.columns[0][1], 1.25);
}

TEST(WaveformIo, ValidateRejectsInconsistentShapes) {
  WaveformTable t = sample_table();
  t.columns[0].pop_back();
  EXPECT_THROW(t.validate(), InvalidArgument);
  t = sample_table();
  t.names.pop_back();
  EXPECT_THROW(t.validate(), InvalidArgument);
}

TEST(WaveformIo, FileRoundTrip) {
  const auto t = sample_table();
  const std::string path = "wfio_test.tmp";
  write_waveform_table_file(t, path);
  const auto back = read_waveform_table_file(path);
  EXPECT_EQ(back.names, t.names);
  std::remove(path.c_str());
  EXPECT_THROW(read_waveform_table_file("does_not_exist.tmp"), ParseError);
}

}  // namespace
}  // namespace matex::solver
