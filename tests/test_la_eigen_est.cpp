#include "la/eigen_est.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "la/dense_matrix.hpp"
#include "la/error.hpp"
#include "la/sparse_lu.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

TEST(PowerIteration, DiagonalDominantEigenvalue) {
  DenseMatrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = -5.0;
  d(2, 2) = 2.0;
  const auto r = power_iteration(
      3, [&](std::span<const double> x, std::span<double> y) {
        d.multiply(x, y);
      });
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, -5.0, 1e-6);
}

TEST(PowerIteration, GridLaplacianLargestEigenvalueBound) {
  // Gershgorin: largest eigenvalue of the grid Laplacian is <= 2*max_deg.
  const auto g = testing::grid_laplacian(8, 8);
  const auto r = power_iteration(
      static_cast<std::size_t>(g.rows()),
      [&](std::span<const double> x, std::span<double> y) {
        g.multiply(x, y);
      },
      2000, 1e-10);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.eigenvalue, 0.0);
  EXPECT_LE(r.eigenvalue, 8.1);
}

TEST(PowerIteration, InverseIterationFindsSmallestMode) {
  // lambda_min(A) = 1 / lambda_max(A^{-1}).
  const auto g = testing::grid_laplacian(6, 6, 0.5);
  const SparseLU lu(g);
  const auto r = power_iteration(
      static_cast<std::size_t>(g.rows()),
      [&](std::span<const double> x, std::span<double> y) {
        auto sol = lu.solve(x);
        std::copy(sol.begin(), sol.end(), y.begin());
      },
      2000, 1e-10);
  EXPECT_TRUE(r.converged);
  const double lambda_min = 1.0 / r.eigenvalue;
  // The leak term shifts the spectrum: lambda_min >= leak.
  EXPECT_GE(lambda_min, 0.5 - 1e-6);
  EXPECT_LE(lambda_min, 1.2);
}

TEST(PowerIteration, ZeroOperatorConverges) {
  const auto r = power_iteration(
      4, [](std::span<const double>, std::span<double> y) {
        for (double& v : y) v = 0.0;
      });
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.eigenvalue, 0.0);
}

TEST(PowerIteration, InvalidArgsThrow) {
  const ApplyFn noop = [](std::span<const double>, std::span<double>) {};
  EXPECT_THROW(power_iteration(0, noop), InvalidArgument);
  EXPECT_THROW(power_iteration(3, noop, 0), InvalidArgument);
}

class PowerIterationPropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PowerIterationPropertyTest, MatchesDiagonalGroundTruth) {
  testing::Rng rng(GetParam());
  const std::size_t n = 3 + rng.index(30);
  DenseMatrix d(n, n);
  double dominant = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d(i, i) = rng.uniform(-10.0, 10.0);
    if (std::abs(d(i, i)) > std::abs(dominant)) dominant = d(i, i);
  }
  // Ensure a clear gap so the iteration converges within budget.
  d(0, 0) = 15.0 * (dominant < 0 ? -1.0 : 1.0);
  const auto r = power_iteration(
      n,
      [&](std::span<const double> x, std::span<double> y) {
        d.multiply(x, y);
      },
      5000, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, d(0, 0), 1e-5 * std::abs(d(0, 0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerIterationPropertyTest,
                         ::testing::Range<std::size_t>(1, 11));

}  // namespace
}  // namespace matex::la
