#include "la/sparse_lu.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "la/dense_lu.hpp"
#include "la/error.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

std::vector<double> residual(const CscMatrix& a, std::span<const double> x,
                             std::span<const double> b) {
  std::vector<double> r(b.begin(), b.end());
  a.multiply_add(-1.0, x, r);
  return r;
}

TEST(SparseLU, SolvesIdentity) {
  const auto eye = CscMatrix::identity(4);
  const SparseLU lu(eye);
  std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(SparseLU, SolvesHandPickedSystem) {
  // [[4,1,0],[1,3,1],[0,1,2]] x = [6,10,7] -> x = [1,2,5/2]... verify via
  // residual instead of hand-solving.
  TripletMatrix t(3, 3);
  t.add(0, 0, 4);
  t.add(0, 1, 1);
  t.add(1, 0, 1);
  t.add(1, 1, 3);
  t.add(1, 2, 1);
  t.add(2, 1, 1);
  t.add(2, 2, 2);
  const auto a = t.to_csc();
  std::vector<double> b{6.0, 10.0, 7.0};
  const auto x = SparseLU(a).solve(b);
  EXPECT_NEAR(norm_inf(residual(a, x, b)), 0.0, 1e-12);
}

TEST(SparseLU, RequiresOffDiagonalPivoting) {
  // Zero diagonal forces row pivoting away from the diagonal.
  TripletMatrix t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 2.0);
  const auto a = t.to_csc();
  std::vector<double> b{3.0, 8.0};
  const auto x = SparseLU(a).solve(b);
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SparseLU, SingularThrows) {
  // Second column identical to the first.
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 1, 1.0);
  EXPECT_THROW(SparseLU lu(t.to_csc()), NumericalError);
}

TEST(SparseLU, StructurallySingularThrows) {
  // Empty column.
  TripletMatrix t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  // column 2 empty, row 2 empty
  EXPECT_THROW(SparseLU lu(t.to_csc()), NumericalError);
}

TEST(SparseLU, NonSquareThrows) {
  TripletMatrix t(2, 3);
  t.add(0, 0, 1.0);
  EXPECT_THROW(SparseLU lu(t.to_csc()), InvalidArgument);
}

TEST(SparseLU, BadPivotTolRejected) {
  const auto eye = CscMatrix::identity(2);
  SparseLuOptions opt;
  opt.pivot_tol = 0.0;
  EXPECT_THROW(SparseLU lu(eye, opt), InvalidArgument);
  opt.pivot_tol = 2.0;
  EXPECT_THROW(SparseLU lu2(eye, opt), InvalidArgument);
}

TEST(SparseLU, GridLaplacianSolveMatchesDense) {
  const auto g = testing::grid_laplacian(6, 7);
  testing::Rng rng(9);
  const auto b =
      testing::random_vector(static_cast<std::size_t>(g.rows()), rng);
  const auto xs = SparseLU(g).solve(b);
  // Dense reference.
  const auto dcm = g.to_dense_column_major();
  DenseMatrix dm(static_cast<std::size_t>(g.rows()),
                 static_cast<std::size_t>(g.cols()),
                 std::vector<double>(dcm.begin(), dcm.end()));
  const auto xd = DenseLU(dm).solve(b);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));
}

TEST(SparseLU, TransposeSolve) {
  testing::Rng rng(10);
  const index_t n = 25;
  // Unsymmetric values on a symmetric pattern.
  auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  {
    auto vals = a.values();
    for (std::size_t k = 0; k < vals.size(); ++k)
      vals[k] *= (1.0 + 0.1 * static_cast<double>(k % 7));
  }
  // Re-dominate the diagonal so it stays nonsingular.
  TripletMatrix t(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p)
      t.add(a.row_idx()[p], j, a.values()[p]);
  for (index_t i = 0; i < n; ++i) t.add(i, i, 20.0);
  const auto m = t.to_csc();

  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const SparseLU lu(m);
  const auto x = lu.solve_transpose(b);
  // Check A' x = b via (x' A)' residual.
  std::vector<double> atx(static_cast<std::size_t>(n));
  m.multiply_transpose(x, atx);
  EXPECT_NEAR(max_abs_diff(std::span<const double>(atx),
                           std::span<const double>(b)),
              0.0, 1e-10);
}

TEST(SparseLU, FillStatsPopulated) {
  const auto g = testing::grid_laplacian(10, 10);
  const SparseLU lu(g);
  EXPECT_GT(lu.nnz_l(), g.rows());
  EXPECT_GT(lu.nnz_u(), g.rows());
  EXPECT_GE(lu.fill_ratio(), 1.0);
  EXPECT_GT(lu.min_abs_pivot(), 0.0);
}

TEST(SparseLU, ExtremeValueSpreadStaysAccurate) {
  // Mimics stiff RC systems: entries spanning ~12 orders of magnitude.
  TripletMatrix t(4, 4);
  t.add(0, 0, 1e12);
  t.add(1, 1, 1e-4);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1e6);
  t.add(0, 1, 1e3);
  t.add(1, 0, 1e3);
  t.add(2, 3, 1e-3);
  t.add(3, 2, 1e-3);
  const auto a = t.to_csc();
  std::vector<double> b{1.0, 1.0, 1.0, 1.0};
  const auto x = SparseLU(a).solve(b);
  const auto r = residual(a, x, b);
  // Backward-stable bound: residual small relative to |A| |x|.
  EXPECT_LE(norm_inf(r), 1e-12 * (a.norm1() * norm_inf(x) + norm_inf(b)));
}

// ------------------------------------------------------------------------
// Symbolic/numeric split: refactorization along a cached pattern.

/// Returns a copy of `a` with every stored value replaced (same pattern).
CscMatrix with_scaled_values(const CscMatrix& a, double factor,
                             double diag_boost) {
  TripletMatrix t(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      const index_t i = a.row_idx()[p];
      t.add(i, j, a.values()[p] * factor + (i == j ? diag_boost : 0.0));
    }
  return t.to_csc();
}

TEST(SparseLuRefactor, SameValuesBitwiseIdentical) {
  testing::Rng rng(31);
  const index_t n = 60;
  const auto a = testing::random_sparse_spd_like(n, 0.15, rng);
  const SparseLU fresh(a);
  const SparseLU refill(a, fresh.symbolic());
  EXPECT_TRUE(refill.refactored());
  EXPECT_EQ(refill.symbolic().get(), fresh.symbolic().get());
  EXPECT_EQ(fresh.nnz_l(), refill.nnz_l());
  EXPECT_EQ(fresh.nnz_u(), refill.nnz_u());
  EXPECT_EQ(fresh.min_abs_pivot(), refill.min_abs_pivot());
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto x1 = fresh.solve(b);
  const auto x2 = refill.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(SparseLuRefactor, DifferentValuesSolveCorrectly) {
  testing::Rng rng(32);
  const index_t n = 50;
  const auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  const SparseLU fresh(a);
  // Same pattern, different values: the gamma-sweep situation.
  const auto a2 = with_scaled_values(a, 3.5, 1.0);
  const SparseLU refill(a2, fresh.symbolic());
  EXPECT_TRUE(refill.refactored());
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto x = refill.solve(b);
  const double scale = a2.norm1() * norm_inf(x) + norm_inf(b);
  EXPECT_LE(norm_inf(residual(a2, x, b)), 1e-12 * scale);
  // And it must be exactly what a from-scratch factorization computes
  // when that factorization chooses the same (diagonal) pivots.
  const auto x_ref = SparseLU(a2).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x_ref[i]);
}

TEST(SparseLuRefactor, PivotViolationFallsBackAndRecovers) {
  // a1 is diagonally dominant -> diagonal pivots. a2 has the same 2x2
  // dense pattern but a tiny diagonal and large off-diagonal, so the
  // frozen diagonal pivot violates the refactor tolerance.
  TripletMatrix t1(2, 2);
  t1.add(0, 0, 4.0);
  t1.add(0, 1, 1.0);
  t1.add(1, 0, 1.0);
  t1.add(1, 1, 4.0);
  const auto a1 = t1.to_csc();
  TripletMatrix t2(2, 2);
  t2.add(0, 0, 1e-13);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1e-13);
  const auto a2 = t2.to_csc();

  const SparseLU fresh(a1);
  const SparseLU fallback(a2, fresh.symbolic());
  EXPECT_FALSE(fallback.refactored());  // tolerance violation detected
  EXPECT_NE(fallback.symbolic().get(), fresh.symbolic().get());
  // ... and the full-pivoting fallback still solves accurately.
  std::vector<double> b{1.0, 2.0};
  const auto x = fallback.solve(b);
  EXPECT_LE(norm_inf(residual(a2, x, b)), 1e-12);
}

TEST(SparseLuRefactor, SingularMatrixStillThrows) {
  TripletMatrix t1(2, 2);
  t1.add(0, 0, 2.0);
  t1.add(0, 1, 1.0);
  t1.add(1, 0, 1.0);
  t1.add(1, 1, 2.0);
  const auto a1 = t1.to_csc();
  TripletMatrix t2(2, 2);  // same pattern, rank 1
  t2.add(0, 0, 1.0);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1.0);
  const SparseLU fresh(a1);
  EXPECT_THROW(SparseLU(t2.to_csc(), fresh.symbolic()), NumericalError);
}

TEST(SparseLuRefactor, PatternMismatchRejected) {
  testing::Rng rng(33);
  const auto a = testing::random_sparse_spd_like(20, 0.2, rng);
  const auto other = testing::grid_laplacian(4, 5);
  const SparseLU fresh(a);
  EXPECT_THROW(SparseLU(other, fresh.symbolic()), InvalidArgument);
}

TEST(SparseLuRefactor, SharedSymbolicIsConcurrencySafeByConstness) {
  // Many numeric factorizations can share one symbolic analysis object.
  testing::Rng rng(34);
  const auto a = testing::random_sparse_spd_like(40, 0.2, rng);
  const SparseLU fresh(a);
  std::vector<std::unique_ptr<SparseLU>> lus;
  for (int i = 0; i < 4; ++i)
    lus.push_back(std::make_unique<SparseLU>(
        with_scaled_values(a, 1.0 + i, 0.5), fresh.symbolic()));
  for (const auto& lu : lus) EXPECT_TRUE(lu->refactored());
  EXPECT_GE(fresh.symbolic().use_count(), 5);
}

// ------------------------------------------------------------------------
// Supernode detection and the blocked numeric refactorization.

TEST(SupernodePlan, DiagonalMatrixIsAllSingletons) {
  TripletMatrix t(6, 6);
  for (index_t i = 0; i < 6; ++i) t.add(i, i, 2.0 + i);
  const SparseLU lu(t.to_csc());
  const SymbolicLU& s = *lu.symbolic();
  EXPECT_EQ(s.num_supernodes(), 6);
  EXPECT_EQ(s.supernode_stats().max_width, 1);
  EXPECT_EQ(s.supernode_stats().padded_entries, 0);
  EXPECT_FALSE(s.supernodal_profitable());
}

TEST(SupernodePlan, DenseMatrixIsOneSupernode) {
  // A fully dense SPD-like matrix: every column shares the full reach, so
  // strict merging collapses the whole factor into one panel (the
  // "full-dense tail" shape a mesh factorization ends in).
  const index_t n = 12;
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      t.add(i, j, i == j ? 2.0 * n : 1.0 / (1.0 + i + j));
  SparseLuOptions opt;
  opt.amalg_relax = 0.0;
  const SparseLU lu(t.to_csc(), opt);
  const SymbolicLU& s = *lu.symbolic();
  EXPECT_EQ(s.num_supernodes(), 1);
  EXPECT_EQ(s.supernode_stats().max_width, n);
  EXPECT_EQ(s.supernode_stats().padded_entries, 0);
  // Merged, but far too small to leave the scalar replay's cache-resident
  // regime: kAuto correctly stays scalar (kAlways still runs the panels).
  EXPECT_FALSE(s.supernodal_profitable());
}

TEST(SupernodePlan, MaxWidthBoundsThePanels) {
  const index_t n = 12;
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      t.add(i, j, i == j ? 2.0 * n : 1.0 / (1.0 + i + j));
  SparseLuOptions opt;
  opt.amalg_max_width = 5;
  const SparseLU lu(t.to_csc(), opt);
  EXPECT_EQ(lu.symbolic()->supernode_stats().max_width, 5);
  // amalg_max_width == 1 degenerates to all singletons.
  opt.amalg_max_width = 1;
  const SparseLU singletons(t.to_csc(), opt);
  EXPECT_EQ(singletons.symbolic()->num_supernodes(), n);
}

TEST(SupernodePlan, AmalgamationOffAdmitsOnlyExactMerges) {
  const auto g = testing::grid_laplacian(9, 11);
  SparseLuOptions strict_opt;
  strict_opt.amalg_relax = 0.0;
  const SparseLU strict_lu(g, strict_opt);
  const SparseLU relaxed_lu(g);  // default relax
  // Zero-padding merges only under relax == 0; the relaxed plan merges at
  // least as aggressively and pays for it with padded cells.
  EXPECT_EQ(strict_lu.symbolic()->supernode_stats().padded_entries, 0);
  EXPECT_LE(relaxed_lu.symbolic()->num_supernodes(),
            strict_lu.symbolic()->num_supernodes());
  EXPECT_GT(strict_lu.symbolic()->num_supernodes(), 0);
}

TEST(SupernodalRefactor, BitwiseIdenticalToScalarReplayAcrossMatrices) {
  testing::Rng rng(41);
  std::vector<CscMatrix> cases;
  cases.push_back(testing::grid_laplacian(10, 12));
  cases.push_back(testing::random_sparse_spd_like(70, 0.12, rng));
  cases.push_back(testing::random_sparse_spd_like(40, 0.3, rng));
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const CscMatrix& a = cases[ci];
    const SparseLU fresh(a);
    // Same pattern, different values: the gamma-sweep refill.
    const auto a2 = with_scaled_values(a, 2.25, 0.75);
    SparseLuOptions blocked_opt, scalar_opt;
    blocked_opt.supernodal = SupernodalMode::kAlways;
    scalar_opt.supernodal = SupernodalMode::kNever;
    const SparseLU blocked(a2, fresh.symbolic(), blocked_opt);
    const SparseLU scalar(a2, fresh.symbolic(), scalar_opt);
    ASSERT_TRUE(blocked.refactored()) << "case " << ci;
    EXPECT_TRUE(blocked.refactored_supernodal()) << "case " << ci;
    ASSERT_TRUE(scalar.refactored()) << "case " << ci;
    EXPECT_FALSE(scalar.refactored_supernodal()) << "case " << ci;
    EXPECT_EQ(blocked.min_abs_pivot(), scalar.min_abs_pivot())
        << "case " << ci;
    const auto b = testing::random_vector(
        static_cast<std::size_t>(a.rows()), rng);
    const auto xb = blocked.solve(b);
    const auto xs = scalar.solve(b);
    for (std::size_t i = 0; i < xb.size(); ++i)
      EXPECT_EQ(xb[i], xs[i]) << "case " << ci << " i " << i;
    // Transpose solves run off the same factor arrays.
    const auto tb = blocked.solve_transpose(b);
    const auto ts = scalar.solve_transpose(b);
    for (std::size_t i = 0; i < tb.size(); ++i)
      EXPECT_EQ(tb[i], ts[i]) << "case " << ci << " i " << i;
  }
}

TEST(SupernodalRefactor, SameValuesRefillMatchesFreshFactorization) {
  testing::Rng rng(42);
  const auto a = testing::grid_laplacian(11, 9);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  const SparseLU fresh(a, opt);
  const SparseLU refill(a, fresh.symbolic(), opt);
  EXPECT_TRUE(refill.refactored_supernodal());
  EXPECT_EQ(fresh.min_abs_pivot(), refill.min_abs_pivot());
  const auto b = testing::random_vector(
      static_cast<std::size_t>(a.rows()), rng);
  const auto x1 = fresh.solve(b);
  const auto x2 = refill.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(SupernodalRefactor, PivotViolationFallsBackAndRecovers) {
  // Same shape as the scalar-replay fallback test, forced through the
  // blocked kernel: the frozen diagonal pivot trips, the constructor
  // falls back (blocked -> scalar replay -> full factorization), and the
  // result still solves.
  TripletMatrix t1(2, 2);
  t1.add(0, 0, 4.0);
  t1.add(0, 1, 1.0);
  t1.add(1, 0, 1.0);
  t1.add(1, 1, 4.0);
  TripletMatrix t2(2, 2);
  t2.add(0, 0, 1e-13);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1e-13);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  const SparseLU fresh(t1.to_csc(), opt);
  const auto a2 = t2.to_csc();
  const SparseLU fallback(a2, fresh.symbolic(), opt);
  EXPECT_FALSE(fallback.refactored());
  EXPECT_FALSE(fallback.refactored_supernodal());
  std::vector<double> b{1.0, 2.0};
  const auto x = fallback.solve(b);
  EXPECT_LE(norm_inf(residual(a2, x, b)), 1e-12);
}

TEST(SupernodalRefactor, AutoModeSkipsThinPlans) {
  // All-singleton plan (tridiagonal): kAuto stays on the scalar replay,
  // kAlways runs the panels anyway -- and both agree bitwise.
  const index_t n = 30;
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  const auto a = t.to_csc();
  const SparseLU fresh(a);
  const auto a2 = with_scaled_values(a, 1.5, 0.25);
  SparseLuOptions auto_opt;  // kAuto default
  const SparseLU auto_lu(a2, fresh.symbolic(), auto_opt);
  SparseLuOptions always_opt;
  always_opt.supernodal = SupernodalMode::kAlways;
  const SparseLU always_lu(a2, fresh.symbolic(), always_opt);
  ASSERT_TRUE(auto_lu.refactored());
  ASSERT_TRUE(always_lu.refactored());
  EXPECT_TRUE(always_lu.refactored_supernodal());
  testing::Rng rng(43);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const auto x1 = auto_lu.solve(b);
  const auto x2 = always_lu.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(SupernodalRefactor, SparseRhsSolveAgreesWithScalarFactors) {
  testing::Rng rng(44);
  const auto a = testing::grid_laplacian(8, 9);
  const SparseLU fresh(a);
  const auto a2 = with_scaled_values(a, 3.0, 0.5);
  SparseLuOptions blocked_opt;
  blocked_opt.supernodal = SupernodalMode::kAlways;
  const SparseLU blocked(a2, fresh.symbolic(), blocked_opt);
  ASSERT_TRUE(blocked.refactored_supernodal());
  const index_t n = a.rows();
  SparseRhsWorkspace ws(n);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const std::vector<index_t> rows{3, 17};
  const std::vector<double> vals{1.0, -0.5};
  const auto pattern = blocked.solve_sparse_rhs(rows, vals, x, ws);
  std::vector<double> dense_b(static_cast<std::size_t>(n), 0.0);
  dense_b[3] = 1.0;
  dense_b[17] = -0.5;
  const auto x_ref = blocked.solve(dense_b);
  for (std::size_t i = 0; i < x_ref.size(); ++i) EXPECT_EQ(x[i], x_ref[i]);
  for (const index_t i : pattern) x[static_cast<std::size_t>(i)] = 0.0;
}

// ------------------------------------------------------------------------
// Sparse-right-hand-side (reach-restricted) solve.

TEST(SparseRhsSolve, MatchesDenseSolveOnRandomPatterns) {
  testing::Rng rng(35);
  for (int trial = 0; trial < 12; ++trial) {
    const index_t n = static_cast<index_t>(15 + rng.index(60));
    const auto a = testing::random_sparse_spd_like(n, 0.15, rng);
    const SparseLU lu(a);
    SparseRhsWorkspace ws(n);
    // Between 1 and 5 distinct nonzero RHS entries.
    const std::size_t k = 1 + rng.index(5);
    std::vector<index_t> rows;
    std::vector<double> vals;
    std::vector<double> dense_b(static_cast<std::size_t>(n), 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      const index_t r = static_cast<index_t>(rng.index(
          static_cast<std::size_t>(n)));
      if (dense_b[static_cast<std::size_t>(r)] != 0.0) continue;
      const double v = rng.uniform(-2.0, 2.0);
      rows.push_back(r);
      vals.push_back(v);
      dense_b[static_cast<std::size_t>(r)] = v;
    }
    std::vector<double> x_sparse(static_cast<std::size_t>(n), 0.0);
    const auto pattern = lu.solve_sparse_rhs(rows, vals, x_sparse, ws);
    const auto x_dense = lu.solve(dense_b);
    for (std::size_t i = 0; i < x_dense.size(); ++i)
      EXPECT_EQ(x_sparse[i], x_dense[i]) << "trial " << trial << " i " << i;
    // The reported pattern covers every nonzero of the solution.
    std::vector<char> in_pattern(static_cast<std::size_t>(n), 0);
    for (const index_t i : pattern) in_pattern[static_cast<std::size_t>(i)] =
        1;
    for (std::size_t i = 0; i < x_dense.size(); ++i) {
      if (x_sparse[i] != 0.0) {
        EXPECT_TRUE(in_pattern[i]);
      }
    }
    // Clearing the pattern restores the all-zero input invariant, so the
    // workspace can be reused immediately.
    for (const index_t i : pattern) x_sparse[static_cast<std::size_t>(i)] =
        0.0;
    for (const double v : x_sparse) EXPECT_EQ(v, 0.0);
  }
}

TEST(SparseRhsSolve, RepeatedCallsReuseWorkspace) {
  testing::Rng rng(36);
  const auto a = testing::random_sparse_spd_like(30, 0.2, rng);
  const SparseLU lu(a);
  SparseRhsWorkspace ws;
  std::vector<double> x(30, 0.0);
  const std::vector<index_t> rows{3};
  for (int i = 0; i < 3; ++i) {
    const std::vector<double> vals{1.0 + i};
    const auto pattern = lu.solve_sparse_rhs(rows, vals, x, ws);
    std::vector<double> b(30, 0.0);
    b[3] = 1.0 + i;
    const auto x_ref = lu.solve(b);
    for (std::size_t j = 0; j < x_ref.size(); ++j) EXPECT_EQ(x[j], x_ref[j]);
    for (const index_t j : pattern) x[static_cast<std::size_t>(j)] = 0.0;
  }
}

TEST(SparseLU, TransposeWorkspaceOverloadMatches) {
  testing::Rng rng(37);
  const auto a = testing::random_sparse_spd_like(25, 0.2, rng);
  const SparseLU lu(a);
  const auto b = testing::random_vector(25, rng);
  const auto x_alloc = lu.solve_transpose(b);
  std::vector<double> x(25), work(25);
  lu.solve_transpose(b, x, work);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x_alloc[i]);
}

struct LuParam {
  std::size_t seed;
  Ordering ordering;
  double pivot_tol;
};

class SparseLuPropertyTest : public ::testing::TestWithParam<LuParam> {};

TEST_P(SparseLuPropertyTest, RandomSystemsSolveToSmallResidual) {
  const auto param = GetParam();
  testing::Rng rng(param.seed);
  const index_t n = static_cast<index_t>(10 + rng.index(80));
  const auto a = testing::random_sparse_spd_like(n, 0.1, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  SparseLuOptions opt;
  opt.ordering = param.ordering;
  opt.pivot_tol = param.pivot_tol;
  const SparseLU lu(a, opt);
  const auto x = lu.solve(b);
  const double scale = a.norm1() * norm_inf(x) + norm_inf(b);
  EXPECT_LE(norm_inf(residual(a, x, b)), 1e-12 * scale);
}

TEST_P(SparseLuPropertyTest, SolveInPlaceMatchesSolve) {
  const auto param = GetParam();
  testing::Rng rng(param.seed + 777);
  const index_t n = static_cast<index_t>(5 + rng.index(40));
  const auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  SparseLuOptions opt;
  opt.ordering = param.ordering;
  opt.pivot_tol = param.pivot_tol;
  const SparseLU lu(a, opt);
  const auto x1 = lu.solve(b);
  std::vector<double> x2(b.begin(), b.end());
  lu.solve_in_place(x2);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, SparseLuPropertyTest,
    ::testing::Values(LuParam{1, Ordering::kNatural, 1e-3},
                      LuParam{2, Ordering::kRcm, 1e-3},
                      LuParam{3, Ordering::kMinDegree, 1e-3},
                      LuParam{4, Ordering::kMinDegree, 1.0},
                      LuParam{5, Ordering::kRcm, 1.0},
                      LuParam{6, Ordering::kNatural, 0.1},
                      LuParam{7, Ordering::kMinDegree, 0.1},
                      LuParam{8, Ordering::kRcm, 0.01},
                      LuParam{9, Ordering::kMinDegree, 1e-3},
                      LuParam{10, Ordering::kRcm, 1e-3}));

}  // namespace
}  // namespace matex::la
