#include "la/sparse_lu.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/dense_lu.hpp"
#include "la/error.hpp"
#include "la/vector_ops.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

std::vector<double> residual(const CscMatrix& a, std::span<const double> x,
                             std::span<const double> b) {
  std::vector<double> r(b.begin(), b.end());
  a.multiply_add(-1.0, x, r);
  return r;
}

TEST(SparseLU, SolvesIdentity) {
  const auto eye = CscMatrix::identity(4);
  const SparseLU lu(eye);
  std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(SparseLU, SolvesHandPickedSystem) {
  // [[4,1,0],[1,3,1],[0,1,2]] x = [6,10,7] -> x = [1,2,5/2]... verify via
  // residual instead of hand-solving.
  TripletMatrix t(3, 3);
  t.add(0, 0, 4);
  t.add(0, 1, 1);
  t.add(1, 0, 1);
  t.add(1, 1, 3);
  t.add(1, 2, 1);
  t.add(2, 1, 1);
  t.add(2, 2, 2);
  const auto a = t.to_csc();
  std::vector<double> b{6.0, 10.0, 7.0};
  const auto x = SparseLU(a).solve(b);
  EXPECT_NEAR(norm_inf(residual(a, x, b)), 0.0, 1e-12);
}

TEST(SparseLU, RequiresOffDiagonalPivoting) {
  // Zero diagonal forces row pivoting away from the diagonal.
  TripletMatrix t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 2.0);
  const auto a = t.to_csc();
  std::vector<double> b{3.0, 8.0};
  const auto x = SparseLU(a).solve(b);
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SparseLU, SingularThrows) {
  // Second column identical to the first.
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 1, 1.0);
  EXPECT_THROW(SparseLU lu(t.to_csc()), NumericalError);
}

TEST(SparseLU, StructurallySingularThrows) {
  // Empty column.
  TripletMatrix t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  // column 2 empty, row 2 empty
  EXPECT_THROW(SparseLU lu(t.to_csc()), NumericalError);
}

TEST(SparseLU, NonSquareThrows) {
  TripletMatrix t(2, 3);
  t.add(0, 0, 1.0);
  EXPECT_THROW(SparseLU lu(t.to_csc()), InvalidArgument);
}

TEST(SparseLU, BadPivotTolRejected) {
  const auto eye = CscMatrix::identity(2);
  SparseLuOptions opt;
  opt.pivot_tol = 0.0;
  EXPECT_THROW(SparseLU lu(eye, opt), InvalidArgument);
  opt.pivot_tol = 2.0;
  EXPECT_THROW(SparseLU lu2(eye, opt), InvalidArgument);
}

TEST(SparseLU, GridLaplacianSolveMatchesDense) {
  const auto g = testing::grid_laplacian(6, 7);
  testing::Rng rng(9);
  const auto b =
      testing::random_vector(static_cast<std::size_t>(g.rows()), rng);
  const auto xs = SparseLU(g).solve(b);
  // Dense reference.
  const auto dcm = g.to_dense_column_major();
  DenseMatrix dm(static_cast<std::size_t>(g.rows()),
                 static_cast<std::size_t>(g.cols()),
                 std::vector<double>(dcm.begin(), dcm.end()));
  const auto xd = DenseLU(dm).solve(b);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));
}

TEST(SparseLU, TransposeSolve) {
  testing::Rng rng(10);
  const index_t n = 25;
  // Unsymmetric values on a symmetric pattern.
  auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  {
    auto vals = a.values();
    for (std::size_t k = 0; k < vals.size(); ++k)
      vals[k] *= (1.0 + 0.1 * static_cast<double>(k % 7));
  }
  // Re-dominate the diagonal so it stays nonsingular.
  TripletMatrix t(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p)
      t.add(a.row_idx()[p], j, a.values()[p]);
  for (index_t i = 0; i < n; ++i) t.add(i, i, 20.0);
  const auto m = t.to_csc();

  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  const SparseLU lu(m);
  const auto x = lu.solve_transpose(b);
  // Check A' x = b via (x' A)' residual.
  std::vector<double> atx(static_cast<std::size_t>(n));
  m.multiply_transpose(x, atx);
  EXPECT_NEAR(max_abs_diff(std::span<const double>(atx),
                           std::span<const double>(b)),
              0.0, 1e-10);
}

TEST(SparseLU, FillStatsPopulated) {
  const auto g = testing::grid_laplacian(10, 10);
  const SparseLU lu(g);
  EXPECT_GT(lu.nnz_l(), g.rows());
  EXPECT_GT(lu.nnz_u(), g.rows());
  EXPECT_GE(lu.fill_ratio(), 1.0);
  EXPECT_GT(lu.min_abs_pivot(), 0.0);
}

TEST(SparseLU, ExtremeValueSpreadStaysAccurate) {
  // Mimics stiff RC systems: entries spanning ~12 orders of magnitude.
  TripletMatrix t(4, 4);
  t.add(0, 0, 1e12);
  t.add(1, 1, 1e-4);
  t.add(2, 2, 1.0);
  t.add(3, 3, 1e6);
  t.add(0, 1, 1e3);
  t.add(1, 0, 1e3);
  t.add(2, 3, 1e-3);
  t.add(3, 2, 1e-3);
  const auto a = t.to_csc();
  std::vector<double> b{1.0, 1.0, 1.0, 1.0};
  const auto x = SparseLU(a).solve(b);
  const auto r = residual(a, x, b);
  // Backward-stable bound: residual small relative to |A| |x|.
  EXPECT_LE(norm_inf(r), 1e-12 * (a.norm1() * norm_inf(x) + norm_inf(b)));
}

struct LuParam {
  std::size_t seed;
  Ordering ordering;
  double pivot_tol;
};

class SparseLuPropertyTest : public ::testing::TestWithParam<LuParam> {};

TEST_P(SparseLuPropertyTest, RandomSystemsSolveToSmallResidual) {
  const auto param = GetParam();
  testing::Rng rng(param.seed);
  const index_t n = static_cast<index_t>(10 + rng.index(80));
  const auto a = testing::random_sparse_spd_like(n, 0.1, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  SparseLuOptions opt;
  opt.ordering = param.ordering;
  opt.pivot_tol = param.pivot_tol;
  const SparseLU lu(a, opt);
  const auto x = lu.solve(b);
  const double scale = a.norm1() * norm_inf(x) + norm_inf(b);
  EXPECT_LE(norm_inf(residual(a, x, b)), 1e-12 * scale);
}

TEST_P(SparseLuPropertyTest, SolveInPlaceMatchesSolve) {
  const auto param = GetParam();
  testing::Rng rng(param.seed + 777);
  const index_t n = static_cast<index_t>(5 + rng.index(40));
  const auto a = testing::random_sparse_spd_like(n, 0.2, rng);
  const auto b = testing::random_vector(static_cast<std::size_t>(n), rng);
  SparseLuOptions opt;
  opt.ordering = param.ordering;
  opt.pivot_tol = param.pivot_tol;
  const SparseLU lu(a, opt);
  const auto x1 = lu.solve(b);
  std::vector<double> x2(b.begin(), b.end());
  lu.solve_in_place(x2);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, SparseLuPropertyTest,
    ::testing::Values(LuParam{1, Ordering::kNatural, 1e-3},
                      LuParam{2, Ordering::kRcm, 1e-3},
                      LuParam{3, Ordering::kMinDegree, 1e-3},
                      LuParam{4, Ordering::kMinDegree, 1.0},
                      LuParam{5, Ordering::kRcm, 1.0},
                      LuParam{6, Ordering::kNatural, 0.1},
                      LuParam{7, Ordering::kMinDegree, 0.1},
                      LuParam{8, Ordering::kRcm, 0.01},
                      LuParam{9, Ordering::kMinDegree, 1e-3},
                      LuParam{10, Ordering::kRcm, 1e-3}));

}  // namespace
}  // namespace matex::la
