/// \file test_spice_roundtrip.cpp
/// \brief Seeded fuzz of the SPICE writer -> reader round trip: random
///        netlists with pathological node/element names, extreme values
///        (1e-15..1e12 plus every suffix incl. meg/mil), and
///        comment/continuation-line mutations of the written deck.
///
/// generate_power_grid decks already round-trip in other tests; this tier
/// covers what those decks never contain -- hostile names and the far
/// corners of the value grammar (ROADMAP PR 3 item).
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/netlist.hpp"
#include "circuit/spice.hpp"
#include "circuit/waveform.hpp"
#include "la/error.hpp"
#include "test_util.hpp"

namespace matex::circuit {
namespace {

using testing::Rng;

/// Characters legal inside a name: anything the tokenizer does not treat
/// as a separator ('(' ')' ',' '=' whitespace), is not the comment
/// starter '$', and cannot be mistaken for line syntax at offset 0
/// (names here are always preceded by a letter prefix).
std::string hostile_name(Rng& rng, const char* prefix, int id) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "_.[]<>:;!|@%^&*-+/~#\\{}\"'?";
  std::string name = prefix + std::to_string(id) + "_";
  const std::size_t len = 1 + rng.index(10);
  for (std::size_t i = 0; i < len; ++i)
    name.push_back(kChars[rng.index(sizeof(kChars) - 1)]);
  return name;
}

/// Log-uniform magnitude over the full supported range, random sign for
/// source amplitudes.
double extreme_value(Rng& rng, bool allow_negative) {
  const double mag = std::pow(10.0, rng.uniform(-15.0, 12.0));
  const bool negative = allow_negative && rng.uniform() < 0.3;
  return negative ? -mag : mag;
}

Netlist random_netlist(std::uint64_t seed) {
  Rng rng(seed);
  Netlist n;
  std::vector<std::string> nodes = {"0"};
  const std::size_t node_count = 4 + rng.index(12);
  for (std::size_t i = 0; i < node_count; ++i)
    nodes.push_back(hostile_name(rng, "n", static_cast<int>(i)));
  const auto pick2 = [&](std::string& a, std::string& b) {
    a = nodes[rng.index(nodes.size())];
    do {
      b = nodes[rng.index(nodes.size())];
    } while (b == a);
  };
  int id = 0;
  const std::size_t elements = 8 + rng.index(24);
  for (std::size_t e = 0; e < elements; ++e) {
    std::string a, b;
    pick2(a, b);
    switch (rng.index(5)) {
      case 0:
        n.add_resistor(hostile_name(rng, "R", id++), a, b,
                       extreme_value(rng, false));
        break;
      case 1:
        n.add_capacitor(hostile_name(rng, "C", id++), a, b,
                        extreme_value(rng, false));
        break;
      case 2:
        n.add_inductor(hostile_name(rng, "L", id++), a, b,
                       extreme_value(rng, false));
        break;
      case 3: {
        if (rng.uniform() < 0.5) {
          n.add_current_source(hostile_name(rng, "I", id++), a, b,
                               Waveform::dc(extreme_value(rng, true)));
        } else {
          PulseSpec p;
          p.v1 = extreme_value(rng, true);
          p.v2 = extreme_value(rng, true);
          p.delay = rng.uniform(0.0, 1e-9);
          p.rise = rng.uniform(1e-12, 1e-10);
          p.fall = rng.uniform(1e-12, 1e-10);
          p.width = rng.uniform(1e-11, 1e-9);
          p.period = rng.uniform() < 0.5 ? 0.0 : rng.uniform(3e-9, 1e-8);
          n.add_current_source(hostile_name(rng, "I", id++), a, b,
                               Waveform::pulse(p));
        }
        break;
      }
      default: {
        if (rng.uniform() < 0.5) {
          n.add_voltage_source(hostile_name(rng, "V", id++), a, b,
                               Waveform::dc(extreme_value(rng, true)));
        } else {
          // PWL with breakpoints inside the writer's emission window.
          std::vector<double> ts, vs;
          double t = rng.uniform(0.0, 1e-9);
          const std::size_t pts = 2 + rng.index(5);
          for (std::size_t k = 0; k < pts; ++k) {
            ts.push_back(t);
            vs.push_back(extreme_value(rng, true));
            t += rng.uniform(1e-10, 1e-9);
          }
          n.add_voltage_source(hostile_name(rng, "V", id++), a, b,
                               Waveform::pwl(std::move(ts), std::move(vs)));
        }
        break;
      }
    }
  }
  return n;
}

/// Structural equality of two netlists (names, node names, exact values,
/// waveforms sampled over a wide window).
void expect_netlists_equal(const Netlist& a, const Netlist& b) {
  const auto node_of = [](const Netlist& n, NodeId id) -> std::string {
    return id == kGroundNode ? "0" : n.node_name(id);
  };
  ASSERT_EQ(a.resistors().size(), b.resistors().size());
  ASSERT_EQ(a.capacitors().size(), b.capacitors().size());
  ASSERT_EQ(a.inductors().size(), b.inductors().size());
  ASSERT_EQ(a.current_sources().size(), b.current_sources().size());
  ASSERT_EQ(a.voltage_sources().size(), b.voltage_sources().size());
  const auto check_passives = [&](const std::vector<Passive>& pa,
                                  const std::vector<Passive>& pb) {
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].name, pb[i].name);
      EXPECT_EQ(node_of(a, pa[i].n1), node_of(b, pb[i].n1));
      EXPECT_EQ(node_of(a, pa[i].n2), node_of(b, pb[i].n2));
      // precision(17) output uniquely identifies a double: exact.
      EXPECT_EQ(pa[i].value, pb[i].value) << pa[i].name;
    }
  };
  check_passives(a.resistors(), b.resistors());
  check_passives(a.capacitors(), b.capacitors());
  check_passives(a.inductors(), b.inductors());
  const auto check_sources = [&](const std::vector<Source>& sa,
                                 const std::vector<Source>& sb) {
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].name, sb[i].name);
      EXPECT_EQ(node_of(a, sa[i].n1), node_of(b, sb[i].n1));
      EXPECT_EQ(node_of(a, sa[i].n2), node_of(b, sb[i].n2));
      if (const auto pa = sa[i].waveform.pulse_spec()) {
        const auto pb = sb[i].waveform.pulse_spec();
        ASSERT_TRUE(pb.has_value()) << sa[i].name;
        EXPECT_EQ(*pa, *pb) << sa[i].name;
        continue;
      }
      for (double t = 0.0; t < 8e-9; t += 3.7e-10)
        EXPECT_EQ(sa[i].waveform.value(t), sb[i].waveform.value(t))
            << sa[i].name << " at t = " << t;
    }
  };
  check_sources(a.current_sources(), b.current_sources());
  check_sources(a.voltage_sources(), b.voltage_sources());
}

TEST(SpiceRoundTripFuzz, HostileNamesAndExtremeValuesSurvive) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Netlist original = random_netlist(seed);
    std::ostringstream out;
    write_spice(original, out, "fuzz deck $ with ( hostile , title =",
                1e-11, 1e-8);
    SpiceDeck reread;
    ASSERT_NO_THROW(reread = read_spice_string(out.str()))
        << "seed " << seed << "\n" << out.str();
    expect_netlists_equal(original, reread.netlist);
    ASSERT_TRUE(reread.tran_step.has_value());
    EXPECT_EQ(*reread.tran_step, 1e-11);
  }
}

TEST(SpiceRoundTripFuzz, CommentAndContinuationMutationsPreserveTheDeck) {
  for (std::uint64_t seed = 100; seed <= 112; ++seed) {
    const Netlist original = random_netlist(seed);
    std::ostringstream out;
    write_spice(original, out, "mutation fuzz", 1e-11, 1e-8);

    // Mutate the text: break every card after its first token into a
    // continuation line, intersperse '*' comment lines, and append '$'
    // trailing comments -- all must parse to the identical netlist.
    Rng rng(seed * 77 + 1);
    std::istringstream in(out.str());
    std::ostringstream mutated;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      if (first) {  // keep the title line untouched
        mutated << line << "\n";
        first = false;
        continue;
      }
      if (!line.empty() && line[0] != '.' && rng.uniform() < 0.6) {
        const auto space = line.find(' ');
        if (space != std::string::npos && space + 1 < line.size()) {
          mutated << line.substr(0, space) << "\n+"
                  << line.substr(space + 1);
          if (rng.uniform() < 0.4) mutated << " $ trailing comment ( = ,";
          mutated << "\n";
          if (rng.uniform() < 0.4) mutated << "* interleaved comment\n";
          continue;
        }
      }
      mutated << line;
      if (!line.empty() && line[0] != '.' && rng.uniform() < 0.3)
        mutated << " $ tail";
      mutated << "\n";
      if (rng.uniform() < 0.2) mutated << "\n* noise\n";
    }

    SpiceDeck direct, via_mutation;
    ASSERT_NO_THROW(direct = read_spice_string(out.str())) << "seed "
                                                           << seed;
    ASSERT_NO_THROW(via_mutation = read_spice_string(mutated.str()))
        << "seed " << seed << "\n" << mutated.str();
    expect_netlists_equal(direct.netlist, via_mutation.netlist);
  }
}

TEST(SpiceRoundTripFuzz, EverySuffixAtExtremeMagnitudes) {
  struct SuffixCase {
    const char* suffix;
    double mult;
  };
  const SuffixCase suffixes[] = {
      {"", 1.0},       {"f", 1e-15},      {"p", 1e-12}, {"n", 1e-9},
      {"u", 1e-6},     {"m", 1e-3},       {"mil", 2.54e-5},
      {"k", 1e3},      {"meg", 1e6},      {"g", 1e9},   {"t", 1e12},
  };
  const double bases[] = {1e-15, 3.3e-7, 0.5, 1.0, 42.0, 9.99e11, 1e12};
  for (const auto& s : suffixes)
    for (const double base : bases) {
      std::ostringstream token;
      token.precision(17);
      token << base << s.suffix;
      EXPECT_DOUBLE_EQ(parse_spice_value(token.str()), base * s.mult)
          << token.str();
    }
}

}  // namespace
}  // namespace matex::circuit
