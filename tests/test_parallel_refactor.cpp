/// \file test_parallel_refactor.cpp
/// \brief Parallel supernodal refactorization: bitwise identity against
///        the serial blocked kernel at every thread count, the pivot-trip
///        fallback chain, the kAuto crossover, panel-boundary
///        cancellation, and the cache-side parallel counters.

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "la/error.hpp"
#include "la/sparse_lu.hpp"
#include "la/vector_ops.hpp"
#include "runtime/cancel.hpp"
#include "runtime/factor_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "test_util.hpp"

namespace matex::la {
namespace {

/// Returns a copy of `a` with every stored value replaced (same pattern).
CscMatrix with_scaled_values(const CscMatrix& a, double factor,
                             double diag_boost) {
  TripletMatrix t(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      const index_t i = a.row_idx()[p];
      t.add(i, j, a.values()[p] * factor + (i == j ? diag_boost : 0.0));
    }
  return t.to_csc();
}

std::vector<double> residual(const CscMatrix& a, std::span<const double> x,
                             std::span<const double> b) {
  std::vector<double> r(b.begin(), b.end());
  a.multiply_add(-1.0, x, r);
  return r;
}

/// Thread counts the identity tests pin down: serial-equivalent, minimal
/// contention, and whatever the machine actually has.
std::vector<int> identity_thread_counts() {
  std::vector<int> counts{1, 2};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 2) counts.push_back(hw);
  return counts;
}

TEST(ParallelRefactor, BitwiseIdenticalToSerialAcrossThreadCounts) {
  testing::Rng rng(51);
  std::vector<CscMatrix> cases;
  cases.push_back(testing::grid_laplacian(10, 12));
  cases.push_back(testing::random_sparse_spd_like(70, 0.12, rng));
  cases.push_back(testing::random_sparse_spd_like(40, 0.3, rng));
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const CscMatrix& a = cases[ci];
    const SparseLU fresh(a);
    const auto a2 = with_scaled_values(a, 2.25, 0.75);
    SparseLuOptions serial_opt;
    serial_opt.supernodal = SupernodalMode::kAlways;
    const SparseLU serial(a2, fresh.symbolic(), serial_opt);
    ASSERT_TRUE(serial.refactored()) << "case " << ci;
    EXPECT_FALSE(serial.refactored_parallel()) << "case " << ci;
    const auto b = testing::random_vector(
        static_cast<std::size_t>(a.rows()), rng);
    const auto xs = serial.solve(b);
    const auto ts = serial.solve_transpose(b);
    for (const int threads : identity_thread_counts()) {
      runtime::ThreadPool pool(threads);
      SparseLuOptions par_opt = serial_opt;
      par_opt.pool = &pool;
      const SparseLU par(a2, fresh.symbolic(), par_opt);
      ASSERT_TRUE(par.refactored()) << "case " << ci << " t " << threads;
      EXPECT_TRUE(par.refactored_supernodal())
          << "case " << ci << " t " << threads;
      EXPECT_TRUE(par.refactored_parallel())
          << "case " << ci << " t " << threads;
      // min-abs-pivot merges commutatively, so it is exact too.
      EXPECT_EQ(par.min_abs_pivot(), serial.min_abs_pivot())
          << "case " << ci << " t " << threads;
      const auto xp = par.solve(b);
      const auto tp = par.solve_transpose(b);
      for (std::size_t i = 0; i < xp.size(); ++i)
        EXPECT_EQ(xp[i], xs[i])
            << "case " << ci << " t " << threads << " i " << i;
      for (std::size_t i = 0; i < tp.size(); ++i)
        EXPECT_EQ(tp[i], ts[i])
            << "case " << ci << " t " << threads << " i " << i;
    }
  }
}

TEST(ParallelRefactor, RepeatedParallelRefillsAreDeterministic) {
  // Same values, many refills on a shared pool: completion order varies,
  // results must not (every panel runs the exact serial kernel).
  testing::Rng rng(52);
  const auto a = testing::grid_laplacian(11, 9);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  const SparseLU fresh(a, opt);
  const auto b = testing::random_vector(
      static_cast<std::size_t>(a.rows()), rng);
  runtime::ThreadPool pool(2);
  opt.pool = &pool;
  const SparseLU first(a, fresh.symbolic(), opt);
  ASSERT_TRUE(first.refactored_parallel());
  const auto x0 = first.solve(b);
  for (int r = 0; r < 8; ++r) {
    const SparseLU refill(a, fresh.symbolic(), opt);
    ASSERT_TRUE(refill.refactored_parallel()) << "refill " << r;
    EXPECT_EQ(refill.min_abs_pivot(), first.min_abs_pivot())
        << "refill " << r;
    const auto x = refill.solve(b);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(x[i], x0[i]) << "refill " << r << " i " << i;
  }
}

TEST(ParallelRefactor, PivotViolationFallsBackAndRecovers) {
  // The blocked-kernel fallback test forced through the parallel
  // scheduler: the frozen pivot trips inside a panel task, the refill
  // aborts, and the constructor walks the same fallback chain as the
  // serial kernel (blocked -> scalar replay -> full factorization).
  TripletMatrix t1(2, 2);
  t1.add(0, 0, 4.0);
  t1.add(0, 1, 1.0);
  t1.add(1, 0, 1.0);
  t1.add(1, 1, 4.0);
  TripletMatrix t2(2, 2);
  t2.add(0, 0, 1e-13);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1e-13);
  runtime::ThreadPool pool(2);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  opt.pool = &pool;
  const SparseLU fresh(t1.to_csc(), opt);
  const auto a2 = t2.to_csc();
  const SparseLU fallback(a2, fresh.symbolic(), opt);
  EXPECT_FALSE(fallback.refactored());
  EXPECT_FALSE(fallback.refactored_supernodal());
  EXPECT_FALSE(fallback.refactored_parallel());
  std::vector<double> b{1.0, 2.0};
  const auto x = fallback.solve(b);
  EXPECT_LE(norm_inf(residual(a2, x, b)), 1e-12);
}

TEST(ParallelRefactor, AutoModeStaysSerialBelowTheCrossover) {
  // A small mesh never clears the parallel crossover: under kAuto a
  // supplied pool must be ignored (scheduling overhead would swamp the
  // panels), and the result still matches the serial refill bitwise.
  testing::Rng rng(53);
  const auto a = testing::grid_laplacian(9, 11);
  const SparseLU fresh(a);
  ASSERT_FALSE(fresh.symbolic()->parallel_profitable());
  const auto a2 = with_scaled_values(a, 1.5, 0.25);
  SparseLuOptions serial_opt;  // kAuto default
  const SparseLU serial(a2, fresh.symbolic(), serial_opt);
  runtime::ThreadPool pool(2);
  SparseLuOptions pooled_opt;
  pooled_opt.pool = &pool;
  const SparseLU pooled(a2, fresh.symbolic(), pooled_opt);
  ASSERT_TRUE(pooled.refactored());
  EXPECT_FALSE(pooled.refactored_parallel());
  const auto b = testing::random_vector(
      static_cast<std::size_t>(a.rows()), rng);
  const auto x1 = serial.solve(b);
  const auto x2 = pooled.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(ParallelRefactor, FiredTokenUnwindsTheRefillAndTheFactorsRecover) {
  // Panel-task boundary cancellation: a fired token makes the parallel
  // refill throw CancelledError instead of returning partial factors,
  // and the same symbolic analysis factorizes fine once the token is
  // out of the picture.
  const auto a = testing::grid_laplacian(10, 10);
  runtime::ThreadPool pool(2);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  opt.pool = &pool;
  const SparseLU fresh(a, opt);
  runtime::CancelToken token;
  token.cancel();
  SparseLuOptions cancelled = opt;
  cancelled.cancel = &token;
  EXPECT_THROW(SparseLU(a, fresh.symbolic(), cancelled), CancelledError);
  // The pool survives the unwind and the refill works without the token.
  pool.wait_idle();
  const SparseLU again(a, fresh.symbolic(), opt);
  EXPECT_TRUE(again.refactored_parallel());
  EXPECT_EQ(again.min_abs_pivot(), fresh.min_abs_pivot());
}

TEST(ParallelRefactor, FactorCacheCountsParallelRefills) {
  // The cache threads SparseLuOptions through to the refill, so a
  // same-pattern second request with a pool runs the parallel kernel and
  // shows up in stats().parallel_refactors.
  const auto a = testing::grid_laplacian(10, 12);
  const auto a2 = with_scaled_values(a, 2.0, 0.5);
  runtime::ThreadPool pool(2);
  SparseLuOptions opt;
  opt.supernodal = SupernodalMode::kAlways;
  opt.pool = &pool;
  runtime::FactorCache cache;
  cache.g_factors(a, opt);   // miss: full factorization, caches symbolic
  cache.g_factors(a2, opt);  // same pattern: parallel blocked refill
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.symbolic_hits, 1);
  EXPECT_EQ(stats.supernodal_refactors, 1);
  EXPECT_EQ(stats.parallel_refactors, 1);
  EXPECT_EQ(stats.factor_errors, 0);
  EXPECT_EQ(stats.factor_cancellations, 0);
}

}  // namespace
}  // namespace matex::la
